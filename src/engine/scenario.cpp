#include "engine/scenario.h"

#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/serialize.h"
#include "models/registry.h"

namespace mlck::engine {

using util::Json;

namespace {

Json::Array levels_to_json(const std::vector<int>& levels) {
  Json::Array out;
  out.reserve(levels.size());
  for (const int v : levels) out.emplace_back(v);
  return out;
}

/// Strict-parsing guard: every (de)serialized section rejects keys it
/// does not understand, so a typo'd field ("trails", "tau_mim") fails
/// loudly instead of silently running the default configuration.
void require_known_keys(const Json& doc, const char* context,
                        std::initializer_list<const char*> known) {
  for (const auto& [key, value] : doc.as_object()) {
    bool recognized = false;
    for (const char* k : known) {
      if (key == k) {
        recognized = true;
        break;
      }
    }
    if (recognized) continue;
    std::string message = "unknown key \"" + key + "\" in " + context +
                          " (known keys:";
    for (const char* k : known) message += std::string(" ") + k;
    message += ")";
    throw std::invalid_argument(message);
  }
}

std::vector<int> levels_from_json(const Json& doc) {
  std::vector<int> out;
  for (const auto& item : doc.as_array()) {
    out.push_back(static_cast<int>(item.as_number()));
  }
  return out;
}

const char* kind_name(DistributionSpec::Kind kind) {
  switch (kind) {
    case DistributionSpec::Kind::kExponential: return "exponential";
    case DistributionSpec::Kind::kWeibull: return "weibull";
    case DistributionSpec::Kind::kLogNormal: return "lognormal";
  }
  return "exponential";
}

DistributionSpec::Kind kind_from_name(const std::string& name) {
  if (name == "exponential") return DistributionSpec::Kind::kExponential;
  if (name == "weibull") return DistributionSpec::Kind::kWeibull;
  if (name == "lognormal") return DistributionSpec::Kind::kLogNormal;
  throw std::invalid_argument("unknown distribution kind: " + name +
                              " (use exponential|weibull|lognormal)");
}

/// Shortest faithful parameter rendering for the CLI grammar: integral
/// values print without a fraction, everything else uses the shortest
/// %g precision that parses back to the same double ("0.7", not
/// "0.69999999999999996").
std::string param_to_string(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::stod(buf) == value) break;
  }
  return buf;
}

/// Shared strictness for parse() and the JSON forms: parameters must be
/// positive where given, shape/sigma must match the law, and mean/scale
/// are mutually exclusive ways to set the time scale.
void check_distribution_spec(const DistributionSpec& spec,
                             const char* context) {
  const auto fail = [context](const std::string& what) {
    throw std::invalid_argument(std::string(context) + ": " + what);
  };
  if (!(spec.shape > 0.0) || !std::isfinite(spec.shape)) {
    fail("shape must be positive and finite");
  }
  if (!(spec.sigma > 0.0) || !std::isfinite(spec.sigma)) {
    fail("sigma must be positive and finite");
  }
  if (spec.mean < 0.0 || !std::isfinite(spec.mean)) {
    fail("mean must be positive (or omitted for the system MTBF)");
  }
  if (spec.scale < 0.0 || !std::isfinite(spec.scale)) {
    fail("scale must be positive (or omitted)");
  }
  if (spec.mean > 0.0 && spec.scale > 0.0) {
    fail("give at most one of mean and scale");
  }
}

Json model_options_to_json(const core::DauweOptions& opts) {
  Json::Object doc;
  doc["checkpoint_failures"] = Json(opts.checkpoint_failures);
  doc["restart_failures"] = Json(opts.restart_failures);
  doc["renormalize_severity_shares"] =
      Json(opts.renormalize_severity_shares);
  return Json(std::move(doc));
}

core::DauweOptions model_options_from_json(const Json& doc) {
  core::DauweOptions opts;
  require_known_keys(doc, "scenario.model_options",
                     {"checkpoint_failures", "restart_failures",
                      "renormalize_severity_shares"});
  if (const Json* v = doc.find("checkpoint_failures"))
    opts.checkpoint_failures = v->as_bool();
  if (const Json* v = doc.find("restart_failures"))
    opts.restart_failures = v->as_bool();
  if (const Json* v = doc.find("renormalize_severity_shares"))
    opts.renormalize_severity_shares = v->as_bool();
  return opts;
}

Json optimizer_to_json(const core::OptimizerOptions& opts) {
  Json::Object doc;
  doc["coarse_tau_points"] = Json(opts.coarse_tau_points);
  doc["tau_min"] = Json(opts.tau_min);
  doc["max_count"] = Json(opts.max_count);
  doc["refine_rounds"] = Json(opts.refine_rounds);
  doc["allow_suffix_skipping"] = Json(opts.allow_suffix_skipping);
  doc["lane_batch"] = Json(opts.lane_batch);
  doc["prune"] = Json(opts.prune);
  if (!opts.restrict_levels.empty()) {
    doc["restrict_levels"] = Json(levels_to_json(opts.restrict_levels));
  }
  return Json(std::move(doc));
}

core::OptimizerOptions optimizer_from_json(const Json& doc) {
  core::OptimizerOptions opts;
  require_known_keys(doc, "scenario.optimizer",
                     {"coarse_tau_points", "tau_min", "max_count",
                      "refine_rounds", "allow_suffix_skipping",
                      "lane_batch", "prune", "restrict_levels"});
  if (const Json* v = doc.find("coarse_tau_points"))
    opts.coarse_tau_points = static_cast<int>(v->as_number());
  if (const Json* v = doc.find("tau_min")) opts.tau_min = v->as_number();
  if (const Json* v = doc.find("max_count"))
    opts.max_count = static_cast<int>(v->as_number());
  if (const Json* v = doc.find("refine_rounds"))
    opts.refine_rounds = static_cast<int>(v->as_number());
  if (const Json* v = doc.find("allow_suffix_skipping"))
    opts.allow_suffix_skipping = v->as_bool();
  if (const Json* v = doc.find("lane_batch")) opts.lane_batch = v->as_bool();
  if (const Json* v = doc.find("prune")) opts.prune = v->as_bool();
  if (const Json* v = doc.find("restrict_levels"))
    opts.restrict_levels = levels_from_json(*v);
  return opts;
}

Json sim_to_json(const sim::SimOptions& opts) {
  Json::Object doc;
  doc["restart_policy"] =
      Json(opts.restart_policy == sim::RestartPolicy::kMoodyEscalate
               ? "escalate"
               : "retry");
  doc["take_final_checkpoint"] = Json(opts.take_final_checkpoint);
  return Json(std::move(doc));
}

sim::SimOptions sim_from_json(const Json& doc) {
  sim::SimOptions opts;
  require_known_keys(doc, "scenario.sim",
                     {"restart_policy", "take_final_checkpoint"});
  if (const Json* v = doc.find("restart_policy")) {
    const std::string& policy = v->as_string();
    if (policy == "escalate") {
      opts.restart_policy = sim::RestartPolicy::kMoodyEscalate;
    } else if (policy != "retry") {
      throw std::invalid_argument("unknown restart_policy: " + policy +
                                  " (use retry|escalate)");
    }
  }
  if (const Json* v = doc.find("take_final_checkpoint"))
    opts.take_final_checkpoint = v->as_bool();
  return opts;
}

}  // namespace

double DistributionSpec::resolved_mean(double system_mtbf) const {
  if (mean > 0.0) return mean;
  if (scale > 0.0) {
    switch (kind) {
      case Kind::kExponential: return scale;
      case Kind::kWeibull: return scale * std::tgamma(1.0 + 1.0 / shape);
      case Kind::kLogNormal: return scale * std::exp(0.5 * sigma * sigma);
    }
  }
  return system_mtbf;
}

std::unique_ptr<math::FailureDistribution> DistributionSpec::make(
    const systems::SystemConfig& system) const {
  const double m = resolved_mean(system.mtbf);
  switch (kind) {
    case Kind::kExponential:
      return std::make_unique<math::Exponential>(1.0 / m);
    case Kind::kWeibull:
      return std::make_unique<math::Weibull>(
          math::Weibull::with_mean(m, shape));
    case Kind::kLogNormal:
      return std::make_unique<math::LogNormal>(
          math::LogNormal::with_mean(m, sigma));
  }
  throw std::logic_error("unreachable distribution kind");
}

std::shared_ptr<const math::FailureLaw> DistributionSpec::family() const {
  switch (kind) {
    case Kind::kExponential: return nullptr;  // closed-form fast path
    case Kind::kWeibull: return math::FailureLaw::weibull(shape);
    case Kind::kLogNormal: return math::FailureLaw::lognormal(sigma);
  }
  throw std::logic_error("unreachable distribution kind");
}

DistributionSpec DistributionSpec::parse(const std::string& text) {
  DistributionSpec spec;
  const std::size_t colon = text.find(':');
  spec.kind = kind_from_name(text.substr(0, colon));
  if (colon != std::string::npos) {
    std::string params = text.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= params.size()) {
      const std::size_t comma = params.find(',', pos);
      const std::string item =
          params.substr(pos, comma == std::string::npos ? comma : comma - pos);
      pos = comma == std::string::npos ? params.size() + 1 : comma + 1;
      const std::size_t eq = item.find('=');
      if (item.empty() || eq == std::string::npos) {
        throw std::invalid_argument("failure law \"" + text +
                                    "\": expected key=value, got \"" + item +
                                    "\"");
      }
      const std::string key = item.substr(0, eq);
      double value = 0.0;
      try {
        std::size_t used = 0;
        value = std::stod(item.substr(eq + 1), &used);
        if (used != item.size() - eq - 1) throw std::invalid_argument("");
      } catch (const std::exception&) {
        throw std::invalid_argument("failure law \"" + text +
                                    "\": bad number in \"" + item + "\"");
      }
      if (key == "shape" && spec.kind == Kind::kWeibull) {
        spec.shape = value;
      } else if (key == "sigma" && spec.kind == Kind::kLogNormal) {
        spec.sigma = value;
      } else if (key == "mean") {
        spec.mean = value;
      } else if (key == "scale") {
        spec.scale = value;
      } else {
        throw std::invalid_argument(
            "failure law \"" + text + "\": unknown key \"" + key +
            "\" (use shape [weibull] | sigma [lognormal] | mean | scale)");
      }
    }
  }
  check_distribution_spec(spec, "failure law");
  return spec;
}

std::string DistributionSpec::to_string() const {
  std::string out = kind_name(kind);
  char sep = ':';
  const auto emit = [&out, &sep](const char* key, double value) {
    out += sep;
    out += key;
    out += '=';
    out += param_to_string(value);
    sep = ',';
  };
  if (kind == Kind::kWeibull) emit("shape", shape);
  if (kind == Kind::kLogNormal) emit("sigma", sigma);
  if (mean > 0.0) emit("mean", mean);
  if (scale > 0.0) emit("scale", scale);
  return out;
}

DistributionSpec DistributionSpec::from_json(const Json& doc) {
  DistributionSpec spec;
  require_known_keys(doc, "scenario.failure",
                     {"law", "shape", "sigma", "mean", "scale"});
  if (const Json* v = doc.find("law")) spec.kind = kind_from_name(v->as_string());
  if (const Json* v = doc.find("shape")) spec.shape = v->as_number();
  if (const Json* v = doc.find("sigma")) spec.sigma = v->as_number();
  if (const Json* v = doc.find("mean")) spec.mean = v->as_number();
  if (const Json* v = doc.find("scale")) spec.scale = v->as_number();
  check_distribution_spec(spec, "scenario.failure");
  return spec;
}

DistributionSpec DistributionSpec::from_legacy_json(const Json& doc) {
  DistributionSpec spec;
  require_known_keys(doc, "scenario.distribution",
                     {"kind", "shape", "sigma", "mean"});
  if (const Json* v = doc.find("kind")) spec.kind = kind_from_name(v->as_string());
  if (const Json* v = doc.find("shape")) spec.shape = v->as_number();
  if (const Json* v = doc.find("sigma")) spec.sigma = v->as_number();
  if (const Json* v = doc.find("mean")) spec.mean = v->as_number();
  check_distribution_spec(spec, "scenario.distribution");
  return spec;
}

Json DistributionSpec::to_json() const {
  Json::Object doc;
  doc["law"] = Json(kind_name(kind));
  if (kind == Kind::kWeibull) doc["shape"] = Json(shape);
  if (kind == Kind::kLogNormal) doc["sigma"] = Json(sigma);
  if (mean > 0.0) doc["mean"] = Json(mean);
  if (scale > 0.0) doc["scale"] = Json(scale);
  return Json(std::move(doc));
}

void ScenarioSpec::validate() const {
  if (system.levels() == 0) {
    throw std::invalid_argument("ScenarioSpec: no system configured");
  }
  system.validate();
  if (trials == 0) {
    throw std::invalid_argument("ScenarioSpec: trials must be >= 1");
  }
}

ScenarioSpec ScenarioSpec::from_json(const Json& doc) {
  ScenarioSpec spec;
  require_known_keys(doc, "scenario",
                     {"system", "model", "model_options", "failure",
                      "distribution", "optimizer", "trials", "seed", "sim"});
  if (const Json* sys = doc.find("system")) {
    if (sys->is_string()) {
      spec.system_ref = sys->as_string();
      spec.system = core::load_system(spec.system_ref);
    } else {
      spec.system = core::system_from_json(*sys);
    }
  }
  if (const Json* v = doc.find("model")) spec.model = v->as_string();
  if (const Json* v = doc.find("model_options"))
    spec.model_options = model_options_from_json(*v);
  const Json* failure = doc.find("failure");
  const Json* legacy = doc.find("distribution");
  if (failure != nullptr && legacy != nullptr) {
    throw std::invalid_argument(
        "scenario: give either \"failure\" or the legacy \"distribution\" "
        "section, not both");
  }
  if (failure != nullptr) {
    spec.distribution = DistributionSpec::from_json(*failure);
  } else if (legacy != nullptr) {
    spec.distribution = DistributionSpec::from_legacy_json(*legacy);
  }
  if (const Json* v = doc.find("optimizer"))
    spec.optimizer = optimizer_from_json(*v);
  if (const Json* v = doc.find("trials"))
    spec.trials = static_cast<std::size_t>(v->as_number());
  if (const Json* v = doc.find("seed"))
    spec.seed = static_cast<std::uint64_t>(v->as_number());
  if (const Json* v = doc.find("sim")) spec.sim = sim_from_json(*v);
  return spec;
}

Json ScenarioSpec::to_json() const {
  Json::Object doc;
  if (!system_ref.empty()) {
    doc["system"] = Json(system_ref);
  } else if (system.levels() > 0) {
    doc["system"] = core::to_json(system);
  }
  doc["model"] = Json(model);
  doc["model_options"] = model_options_to_json(model_options);
  doc["failure"] = distribution.to_json();
  doc["optimizer"] = optimizer_to_json(optimizer);
  doc["trials"] = Json(static_cast<double>(trials));
  doc["seed"] = Json(static_cast<double>(seed));
  doc["sim"] = sim_to_json(sim);
  return Json(std::move(doc));
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  return from_json(Json::parse(core::read_file(path)));
}

ScenarioMetrics::ScenarioMetrics(obs::MetricsRegistry& registry) {
  engine.context_hits = &registry.counter("engine.context_cache.hits");
  engine.context_misses = &registry.counter("engine.context_cache.misses");
  engine.evaluations = &registry.counter("engine.evaluations");
  optimizer.plans_swept = &registry.counter("optimizer.plans_swept");
  optimizer.plans_pruned = &registry.counter("optimizer.plans_pruned");
  optimizer.plans_pruned_bound =
      &registry.counter("optimizer.plans_pruned_bound");
  optimizer.plans_refined = &registry.counter("optimizer.plans_refined");
  optimizer.subsets_searched =
      &registry.counter("optimizer.subsets_searched");
  sim.trials = &registry.counter("sim.trials");
  sim.failures = &registry.counter("sim.failures");
  sim.checkpoints_completed =
      &registry.counter("sim.checkpoints_completed");
  sim.restarts_completed = &registry.counter("sim.restarts_completed");
  sim.restarts_failed = &registry.counter("sim.restarts_failed");
  sim.scratch_restarts = &registry.counter("sim.scratch_restarts");
  sim.capped_trials = &registry.counter("sim.capped_trials");
  sim.trial_time_minutes = &registry.histogram("sim.trial_time_minutes");
}

util::ThreadPoolMetrics pool_metrics(obs::MetricsRegistry& registry) {
  util::ThreadPoolMetrics m;
  m.tasks_run = &registry.counter("pool.tasks_run");
  m.queue_depth_high_water = &registry.gauge("pool.queue_depth_high_water");
  m.task_latency_ns = &registry.histogram("pool.task_latency_ns");
  return m;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             util::ThreadPool* pool,
                             obs::MetricsRegistry* metrics,
                             obs::TraceSink* trace) {
  spec.validate();
  ScenarioOutcome outcome;

  // Instrumented copies of the option structs; the wiring lives on this
  // frame for the duration of the run.
  std::optional<ScenarioMetrics> wiring;
  core::OptimizerOptions optimizer_options = spec.optimizer;
  sim::SimOptions sim_options = spec.sim;
  if (metrics != nullptr) {
    wiring.emplace(*metrics);
    optimizer_options.metrics = &wiring->optimizer;
    sim_options.metrics = &wiring->sim;
  }
  optimizer_options.trace = trace;

  {
    obs::Span span(trace, "scenario.select_plan", "scenario");
    if (spec.model == "dauwe") {
      // The cached fast path: one engine, contexts shared across the whole
      // sweep and refinement.
      EvaluationEngine engine = spec.make_engine();
      if (wiring) engine.attach_metrics(wiring->engine);
      engine.attach_trace(trace);
      const core::OptimizationResult best =
          engine.optimize(optimizer_options, pool);
      outcome.selected.technique = "Dauwe et al.";
      outcome.selected.plan = best.plan;
      outcome.selected.predicted_time = best.expected_time;
      outcome.selected.predicted_efficiency = best.efficiency;
    } else {
      const auto technique = models::make_technique(spec.model);
      outcome.selected = technique->select_plan(spec.system, pool);
    }
  }

  obs::Span span(trace, "scenario.simulate", "scenario");
  if (spec.distribution.is_default_exponential()) {
    // Native Poisson source: bit-compatible with pre-scenario seeds.
    outcome.stats =
        sim::run_trials(spec.system, outcome.selected.plan, spec.trials,
                        spec.seed, sim_options, pool);
  } else {
    const auto law = spec.distribution.make(spec.system);
    outcome.stats = sim::run_trials_with_distribution(
        spec.system, outcome.selected.plan, *law, spec.trials, spec.seed,
        sim_options, pool);
  }
  return outcome;
}

}  // namespace mlck::engine

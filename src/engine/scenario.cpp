#include "engine/scenario.h"

#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/serialize.h"
#include "models/registry.h"

namespace mlck::engine {

using util::Json;

namespace {

Json::Array levels_to_json(const std::vector<int>& levels) {
  Json::Array out;
  out.reserve(levels.size());
  for (const int v : levels) out.emplace_back(v);
  return out;
}

/// Strict-parsing guard: every (de)serialized section rejects keys it
/// does not understand, so a typo'd field ("trails", "tau_mim") fails
/// loudly instead of silently running the default configuration.
void require_known_keys(const Json& doc, const char* context,
                        std::initializer_list<const char*> known) {
  for (const auto& [key, value] : doc.as_object()) {
    bool recognized = false;
    for (const char* k : known) {
      if (key == k) {
        recognized = true;
        break;
      }
    }
    if (recognized) continue;
    std::string message = "unknown key \"" + key + "\" in " + context +
                          " (known keys:";
    for (const char* k : known) message += std::string(" ") + k;
    message += ")";
    throw std::invalid_argument(message);
  }
}

std::vector<int> levels_from_json(const Json& doc) {
  std::vector<int> out;
  for (const auto& item : doc.as_array()) {
    out.push_back(static_cast<int>(item.as_number()));
  }
  return out;
}

const char* kind_name(DistributionSpec::Kind kind) {
  switch (kind) {
    case DistributionSpec::Kind::kExponential: return "exponential";
    case DistributionSpec::Kind::kWeibull: return "weibull";
    case DistributionSpec::Kind::kLogNormal: return "lognormal";
  }
  return "exponential";
}

DistributionSpec::Kind kind_from_name(const std::string& name) {
  if (name == "exponential") return DistributionSpec::Kind::kExponential;
  if (name == "weibull") return DistributionSpec::Kind::kWeibull;
  if (name == "lognormal") return DistributionSpec::Kind::kLogNormal;
  throw std::invalid_argument("unknown distribution kind: " + name +
                              " (use exponential|weibull|lognormal)");
}

Json model_options_to_json(const core::DauweOptions& opts) {
  Json::Object doc;
  doc["checkpoint_failures"] = Json(opts.checkpoint_failures);
  doc["restart_failures"] = Json(opts.restart_failures);
  doc["renormalize_severity_shares"] =
      Json(opts.renormalize_severity_shares);
  return Json(std::move(doc));
}

core::DauweOptions model_options_from_json(const Json& doc) {
  core::DauweOptions opts;
  require_known_keys(doc, "scenario.model_options",
                     {"checkpoint_failures", "restart_failures",
                      "renormalize_severity_shares"});
  if (const Json* v = doc.find("checkpoint_failures"))
    opts.checkpoint_failures = v->as_bool();
  if (const Json* v = doc.find("restart_failures"))
    opts.restart_failures = v->as_bool();
  if (const Json* v = doc.find("renormalize_severity_shares"))
    opts.renormalize_severity_shares = v->as_bool();
  return opts;
}

Json optimizer_to_json(const core::OptimizerOptions& opts) {
  Json::Object doc;
  doc["coarse_tau_points"] = Json(opts.coarse_tau_points);
  doc["tau_min"] = Json(opts.tau_min);
  doc["max_count"] = Json(opts.max_count);
  doc["refine_rounds"] = Json(opts.refine_rounds);
  doc["allow_suffix_skipping"] = Json(opts.allow_suffix_skipping);
  if (!opts.restrict_levels.empty()) {
    doc["restrict_levels"] = Json(levels_to_json(opts.restrict_levels));
  }
  return Json(std::move(doc));
}

core::OptimizerOptions optimizer_from_json(const Json& doc) {
  core::OptimizerOptions opts;
  require_known_keys(doc, "scenario.optimizer",
                     {"coarse_tau_points", "tau_min", "max_count",
                      "refine_rounds", "allow_suffix_skipping",
                      "restrict_levels"});
  if (const Json* v = doc.find("coarse_tau_points"))
    opts.coarse_tau_points = static_cast<int>(v->as_number());
  if (const Json* v = doc.find("tau_min")) opts.tau_min = v->as_number();
  if (const Json* v = doc.find("max_count"))
    opts.max_count = static_cast<int>(v->as_number());
  if (const Json* v = doc.find("refine_rounds"))
    opts.refine_rounds = static_cast<int>(v->as_number());
  if (const Json* v = doc.find("allow_suffix_skipping"))
    opts.allow_suffix_skipping = v->as_bool();
  if (const Json* v = doc.find("restrict_levels"))
    opts.restrict_levels = levels_from_json(*v);
  return opts;
}

Json sim_to_json(const sim::SimOptions& opts) {
  Json::Object doc;
  doc["restart_policy"] =
      Json(opts.restart_policy == sim::RestartPolicy::kMoodyEscalate
               ? "escalate"
               : "retry");
  doc["take_final_checkpoint"] = Json(opts.take_final_checkpoint);
  return Json(std::move(doc));
}

sim::SimOptions sim_from_json(const Json& doc) {
  sim::SimOptions opts;
  require_known_keys(doc, "scenario.sim",
                     {"restart_policy", "take_final_checkpoint"});
  if (const Json* v = doc.find("restart_policy")) {
    const std::string& policy = v->as_string();
    if (policy == "escalate") {
      opts.restart_policy = sim::RestartPolicy::kMoodyEscalate;
    } else if (policy != "retry") {
      throw std::invalid_argument("unknown restart_policy: " + policy +
                                  " (use retry|escalate)");
    }
  }
  if (const Json* v = doc.find("take_final_checkpoint"))
    opts.take_final_checkpoint = v->as_bool();
  return opts;
}

}  // namespace

std::unique_ptr<math::FailureDistribution> DistributionSpec::make(
    const systems::SystemConfig& system) const {
  const double resolved_mean = mean > 0.0 ? mean : system.mtbf;
  switch (kind) {
    case Kind::kExponential:
      return std::make_unique<math::Exponential>(1.0 / resolved_mean);
    case Kind::kWeibull:
      return std::make_unique<math::Weibull>(
          math::Weibull::with_mean(resolved_mean, shape));
    case Kind::kLogNormal:
      return std::make_unique<math::LogNormal>(
          math::LogNormal::with_mean(resolved_mean, sigma));
  }
  throw std::logic_error("unreachable distribution kind");
}

DistributionSpec DistributionSpec::from_json(const Json& doc) {
  DistributionSpec spec;
  require_known_keys(doc, "scenario.distribution",
                     {"kind", "shape", "sigma", "mean"});
  if (const Json* v = doc.find("kind")) spec.kind = kind_from_name(v->as_string());
  if (const Json* v = doc.find("shape")) spec.shape = v->as_number();
  if (const Json* v = doc.find("sigma")) spec.sigma = v->as_number();
  if (const Json* v = doc.find("mean")) spec.mean = v->as_number();
  return spec;
}

Json DistributionSpec::to_json() const {
  Json::Object doc;
  doc["kind"] = Json(kind_name(kind));
  if (kind == Kind::kWeibull) doc["shape"] = Json(shape);
  if (kind == Kind::kLogNormal) doc["sigma"] = Json(sigma);
  if (mean > 0.0) doc["mean"] = Json(mean);
  return Json(std::move(doc));
}

void ScenarioSpec::validate() const {
  if (system.levels() == 0) {
    throw std::invalid_argument("ScenarioSpec: no system configured");
  }
  system.validate();
  if (trials == 0) {
    throw std::invalid_argument("ScenarioSpec: trials must be >= 1");
  }
}

ScenarioSpec ScenarioSpec::from_json(const Json& doc) {
  ScenarioSpec spec;
  require_known_keys(doc, "scenario",
                     {"system", "model", "model_options", "distribution",
                      "optimizer", "trials", "seed", "sim"});
  if (const Json* sys = doc.find("system")) {
    if (sys->is_string()) {
      spec.system_ref = sys->as_string();
      spec.system = core::load_system(spec.system_ref);
    } else {
      spec.system = core::system_from_json(*sys);
    }
  }
  if (const Json* v = doc.find("model")) spec.model = v->as_string();
  if (const Json* v = doc.find("model_options"))
    spec.model_options = model_options_from_json(*v);
  if (const Json* v = doc.find("distribution"))
    spec.distribution = DistributionSpec::from_json(*v);
  if (const Json* v = doc.find("optimizer"))
    spec.optimizer = optimizer_from_json(*v);
  if (const Json* v = doc.find("trials"))
    spec.trials = static_cast<std::size_t>(v->as_number());
  if (const Json* v = doc.find("seed"))
    spec.seed = static_cast<std::uint64_t>(v->as_number());
  if (const Json* v = doc.find("sim")) spec.sim = sim_from_json(*v);
  return spec;
}

Json ScenarioSpec::to_json() const {
  Json::Object doc;
  if (!system_ref.empty()) {
    doc["system"] = Json(system_ref);
  } else if (system.levels() > 0) {
    doc["system"] = core::to_json(system);
  }
  doc["model"] = Json(model);
  doc["model_options"] = model_options_to_json(model_options);
  doc["distribution"] = distribution.to_json();
  doc["optimizer"] = optimizer_to_json(optimizer);
  doc["trials"] = Json(static_cast<double>(trials));
  doc["seed"] = Json(static_cast<double>(seed));
  doc["sim"] = sim_to_json(sim);
  return Json(std::move(doc));
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  return from_json(Json::parse(core::read_file(path)));
}

ScenarioMetrics::ScenarioMetrics(obs::MetricsRegistry& registry) {
  engine.context_hits = &registry.counter("engine.context_cache.hits");
  engine.context_misses = &registry.counter("engine.context_cache.misses");
  engine.evaluations = &registry.counter("engine.evaluations");
  optimizer.plans_swept = &registry.counter("optimizer.plans_swept");
  optimizer.plans_pruned = &registry.counter("optimizer.plans_pruned");
  optimizer.plans_refined = &registry.counter("optimizer.plans_refined");
  optimizer.subsets_searched =
      &registry.counter("optimizer.subsets_searched");
  sim.trials = &registry.counter("sim.trials");
  sim.failures = &registry.counter("sim.failures");
  sim.checkpoints_completed =
      &registry.counter("sim.checkpoints_completed");
  sim.restarts_completed = &registry.counter("sim.restarts_completed");
  sim.restarts_failed = &registry.counter("sim.restarts_failed");
  sim.scratch_restarts = &registry.counter("sim.scratch_restarts");
  sim.capped_trials = &registry.counter("sim.capped_trials");
  sim.trial_time_minutes = &registry.histogram("sim.trial_time_minutes");
}

util::ThreadPoolMetrics pool_metrics(obs::MetricsRegistry& registry) {
  util::ThreadPoolMetrics m;
  m.tasks_run = &registry.counter("pool.tasks_run");
  m.queue_depth_high_water = &registry.gauge("pool.queue_depth_high_water");
  m.task_latency_us = &registry.histogram("pool.task_latency_us");
  return m;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             util::ThreadPool* pool,
                             obs::MetricsRegistry* metrics,
                             obs::TraceSink* trace) {
  spec.validate();
  ScenarioOutcome outcome;

  // Instrumented copies of the option structs; the wiring lives on this
  // frame for the duration of the run.
  std::optional<ScenarioMetrics> wiring;
  core::OptimizerOptions optimizer_options = spec.optimizer;
  sim::SimOptions sim_options = spec.sim;
  if (metrics != nullptr) {
    wiring.emplace(*metrics);
    optimizer_options.metrics = &wiring->optimizer;
    sim_options.metrics = &wiring->sim;
  }
  optimizer_options.trace = trace;

  {
    obs::Span span(trace, "scenario.select_plan", "scenario");
    if (spec.model == "dauwe") {
      // The cached fast path: one engine, contexts shared across the whole
      // sweep and refinement.
      EvaluationEngine engine = spec.make_engine();
      if (wiring) engine.attach_metrics(wiring->engine);
      engine.attach_trace(trace);
      const core::OptimizationResult best =
          engine.optimize(optimizer_options, pool);
      outcome.selected.technique = "Dauwe et al.";
      outcome.selected.plan = best.plan;
      outcome.selected.predicted_time = best.expected_time;
      outcome.selected.predicted_efficiency = best.efficiency;
    } else {
      const auto technique = models::make_technique(spec.model);
      outcome.selected = technique->select_plan(spec.system, pool);
    }
  }

  obs::Span span(trace, "scenario.simulate", "scenario");
  if (spec.distribution.is_default_exponential()) {
    // Native Poisson source: bit-compatible with pre-scenario seeds.
    outcome.stats =
        sim::run_trials(spec.system, outcome.selected.plan, spec.trials,
                        spec.seed, sim_options, pool);
  } else {
    const auto law = spec.distribution.make(spec.system);
    outcome.stats = sim::run_trials_with_distribution(
        spec.system, outcome.selected.plan, *law, spec.trials, spec.seed,
        sim_options, pool);
  }
  return outcome;
}

}  // namespace mlck::engine

#include "engine/evaluation.h"

#include "util/parallel.h"

namespace mlck::engine {

EvaluationEngine::EvaluationEngine(systems::SystemConfig system,
                                   core::DauweOptions options)
    : system_(std::move(system)), options_(options) {
  system_.validate();
}

const EvaluationContext& EvaluationEngine::context(
    const std::vector<int>& levels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = contexts_.find(levels);
  if (it == contexts_.end()) {
    it = contexts_
             .emplace(levels, std::make_unique<EvaluationContext>(
                                  system_, levels, options_))
             .first;
    if (metrics_.context_misses != nullptr) metrics_.context_misses->add();
  } else if (metrics_.context_hits != nullptr) {
    metrics_.context_hits->add();
  }
  return *it->second;
}

double EvaluationEngine::expected_time(const core::CheckpointPlan& plan) const {
  if (metrics_.evaluations != nullptr) metrics_.evaluations->add();
  return context(plan.levels).kernel.expected_time(plan.tau0, plan.counts);
}

core::Prediction EvaluationEngine::predict(
    const core::CheckpointPlan& plan) const {
  plan.validate(system_);
  if (metrics_.evaluations != nullptr) metrics_.evaluations->add();
  return context(plan.levels).kernel.predict(plan);
}

core::OptimizationResult EvaluationEngine::optimize(
    const core::OptimizerOptions& options, util::ThreadPool* pool) const {
  // The sweep's cost callable bumps the evaluation counter with one
  // relaxed increment; with no metrics attached the pointer is null and
  // the branch never taken.
  obs::Counter* const evals = metrics_.evaluations;
  const auto factory = [this, evals](const std::vector<int>& levels)
      -> core::PlanCostFn {
    const EvaluationContext& ctx = context(levels);
    return [&ctx, evals](const core::CheckpointPlan& plan) {
      if (evals != nullptr) evals->add();
      return ctx.kernel.expected_time(plan.tau0, plan.counts);
    };
  };
  return core::optimize_intervals_with(factory, system_, options, pool);
}

std::vector<double> EvaluationEngine::expected_times(
    std::span<const core::CheckpointPlan> plans, util::ThreadPool* pool) const {
  // Materialize every needed context serially first so the parallel phase
  // never touches the cache mutex.
  std::vector<const EvaluationContext*> ctx(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ctx[i] = &context(plans[i].levels);
  }
  std::vector<double> out(plans.size());
  util::parallel_for(pool, plans.size(), [&](std::size_t i) {
    out[i] = ctx[i]->kernel.expected_time(plans[i].tau0, plans[i].counts);
  });
  if (metrics_.evaluations != nullptr) metrics_.evaluations->add(plans.size());
  return out;
}

std::size_t EvaluationEngine::cached_contexts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return contexts_.size();
}

}  // namespace mlck::engine

#include "engine/evaluation.h"

#include "util/parallel.h"

namespace mlck::engine {

EvaluationEngine::EvaluationEngine(systems::SystemConfig system,
                                   core::DauweOptions options,
                                   std::shared_ptr<const math::FailureLaw> law)
    : system_(std::move(system)), options_(options), law_(std::move(law)) {
  system_.validate();
}

EvaluationEngine::~EvaluationEngine() {
  const ContextNode* node = head_.load(std::memory_order_acquire);
  while (node != nullptr) {
    const ContextNode* next = node->next;
    delete node;
    node = next;
  }
}

const EvaluationContext* EvaluationEngine::find_context(
    const std::vector<int>& levels) const noexcept {
  // The acquire load pairs with the release store in context(): once a
  // node is visible, so is everything its constructor wrote. next
  // pointers are immutable after publication, so the walk is safe with
  // concurrent appends.
  for (const ContextNode* node = head_.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    if (node->context.levels == levels) return &node->context;
  }
  return nullptr;
}

const EvaluationContext& EvaluationEngine::context(
    const std::vector<int>& levels) const {
  if (const EvaluationContext* ctx = find_context(levels); ctx != nullptr) {
    if (metrics_.context_hits != nullptr) metrics_.context_hits->add();
    return *ctx;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Double-checked: another thread may have built it while we waited.
  if (const EvaluationContext* ctx = find_context(levels); ctx != nullptr) {
    if (metrics_.context_hits != nullptr) metrics_.context_hits->add();
    return *ctx;
  }
  obs::Span span(trace_, "engine.context_build", "engine");
  auto* node = new ContextNode(system_, levels, options_, law_,
                               head_.load(std::memory_order_relaxed));
  head_.store(node, std::memory_order_release);
  if (metrics_.context_misses != nullptr) metrics_.context_misses->add();
  return node->context;
}

double EvaluationEngine::expected_time(const core::CheckpointPlan& plan) const {
  if (metrics_.evaluations != nullptr) metrics_.evaluations->add();
  return context(plan.levels).kernel.expected_time(plan.tau0, plan.counts);
}

core::Prediction EvaluationEngine::predict(
    const core::CheckpointPlan& plan) const {
  plan.validate(system_);
  if (metrics_.evaluations != nullptr) metrics_.evaluations->add();
  return context(plan.levels).kernel.predict(plan);
}

core::OptimizationResult EvaluationEngine::optimize(
    const core::OptimizerOptions& options, util::ThreadPool* pool) const {
  const auto factory =
      [this](const std::vector<int>& levels) -> const core::DauweKernel& {
    return context(levels).kernel;
  };
  core::OptimizationResult result =
      core::optimize_intervals_staged(factory, system_, options, pool);
  // The staged sweep never leaves the kernel cursor, so the evaluation
  // counter is settled in one bulk add instead of one relaxed increment
  // per enumerated plan.
  if (metrics_.evaluations != nullptr) {
    metrics_.evaluations->add(result.evaluations);
  }
  return result;
}

std::vector<double> EvaluationEngine::expected_times(
    std::span<const core::CheckpointPlan> plans, util::ThreadPool* pool) const {
  // Materialize every needed context serially first so the parallel phase
  // never contends on the build mutex.
  std::vector<const EvaluationContext*> ctx(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ctx[i] = &context(plans[i].levels);
  }
  std::vector<double> out(plans.size());
  util::parallel_for(pool, plans.size(), [&](std::size_t i) {
    out[i] = ctx[i]->kernel.expected_time(plans[i].tau0, plans[i].counts);
  });
  if (metrics_.evaluations != nullptr) metrics_.evaluations->add(plans.size());
  return out;
}

std::size_t EvaluationEngine::cached_contexts() const {
  std::size_t n = 0;
  for (const ContextNode* node = head_.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    ++n;
  }
  return n;
}

}  // namespace mlck::engine

#include "app/commands.h"

#include <algorithm>
#include <csignal>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>

#include "core/adaptive.h"
#include "core/dauwe_model.h"
#include "engine/evaluation.h"
#include "engine/scenario.h"
#include "energy/power_model.h"
#include "core/optimizer.h"
#include "core/serialize.h"
#include "core/technique.h"
#include "models/daly.h"
#include "models/di.h"
#include "models/moody.h"
#include "models/registry.h"
#include "models/young.h"
#include "obs/attribution.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/socket.h"
#include "util/table.h"
#include "verify/selftest.h"

namespace mlck::app {

namespace {

using util::Cli;
using util::Table;

int run_connected(const Cli& cli, const std::string& op,
                  const std::string& socket, std::ostream& out);

std::unique_ptr<core::ExecutionTimeModel> make_model(
    const std::string& name) {
  if (name == "dauwe") return std::make_unique<core::DauweModel>();
  if (name == "di") return std::make_unique<models::DiModel>();
  if (name == "moody") return std::make_unique<models::MoodyModel>();
  if (name == "daly") return std::make_unique<models::DalyModel>();
  if (name == "young") return std::make_unique<models::YoungModel>();
  throw std::out_of_range("unknown model: " + name);
}

sim::SimOptions sim_options_from(const Cli& cli) {
  sim::SimOptions opts;
  const std::string policy = cli.get_string("policy", "retry");
  if (policy == "escalate") {
    opts.restart_policy = sim::RestartPolicy::kMoodyEscalate;
  } else if (policy != "retry") {
    throw std::out_of_range("unknown --policy (use retry|escalate)");
  }
  opts.take_final_checkpoint = cli.get_bool("final-checkpoint", false);
  return opts;
}

systems::SystemConfig system_from(const Cli& cli) {
  const auto name = cli.value("system");
  if (!name || name->empty()) {
    throw std::out_of_range("--system=<name|file.json> is required");
  }
  return core::load_system(*name);
}

/// Parses --law=<law>[:key=value,...] (the scenario "failure" grammar,
/// e.g. --law=weibull:shape=0.7,scale=120). Empty optional when the flag
/// is absent — commands keep their law-less output byte-identical then.
/// Only the Dauwe model understands non-exponential laws; @p consumer
/// names the flag's owner for the error message otherwise.
std::optional<engine::DistributionSpec> law_from(const Cli& cli,
                                                const std::string& model,
                                                const char* consumer) {
  const auto text = cli.value("law");
  if (!text || text->empty()) return std::nullopt;
  if (model != "dauwe") {
    throw std::out_of_range(std::string("--law is supported for the dauwe ") +
                            consumer + " only");
  }
  return engine::DistributionSpec::parse(*text);
}

/// Flushes a metrics registry the way every command does: to the sidecar
/// file named by --metrics=<path> (with the standard `meta` provenance
/// section), or as tables after the report when the flag carries no path.
void flush_metrics(const obs::MetricsRegistry& registry,
                   const std::string& path, const Cli& cli,
                   std::ostream& out) {
  if (path.empty()) {
    out << "\nmetrics\n";
    registry.print(out);
  } else {
    core::write_file(
        path, obs::sidecar_json(registry, cli.raw_args()).dump(2) + "\n");
    out << "metrics written to " << path << "\n";
  }
}

/// Sampler cadence from --sample-period-ms (default 50, floor 1).
obs::TelemetrySampler::Options sampler_options_from(const Cli& cli) {
  obs::TelemetrySampler::Options opts;
  opts.period = std::chrono::milliseconds(
      std::max(1, cli.get_int("sample-period-ms", 50)));
  return opts;
}

/// True when the command should build a metrics registry even without
/// --metrics: the OpenMetrics and timeline exports read one too.
bool wants_registry(const Cli& cli) {
  if (cli.has("metrics")) return true;
  for (const char* flag : {"openmetrics", "timeline"}) {
    if (const auto path = cli.value(flag); path.has_value()) {
      if (path->empty()) {
        throw std::out_of_range(std::string("--") + flag +
                                " requires a file path (--" + flag +
                                "=out." +
                                (std::string(flag) == "timeline" ? "jsonl"
                                                                 : "txt") +
                                ")");
      }
      return true;
    }
  }
  return false;
}

/// Writes the --openmetrics and --timeline artifacts when requested.
/// The sampler may be null (commands without a live timeline); the
/// registry may not.
void flush_exports(const obs::MetricsRegistry& registry,
                   const obs::TelemetrySampler* sampler, const Cli& cli,
                   std::ostream& out) {
  if (const auto path = cli.value("openmetrics"); path && !path->empty()) {
    core::write_file(*path, obs::openmetrics_text(registry.snapshot()));
    out << "openmetrics written to " << *path << "\n";
  }
  if (const auto path = cli.value("timeline"); path && !path->empty()) {
    if (sampler == nullptr) {
      throw std::out_of_range("--timeline is not supported here");
    }
    core::write_file(*path, obs::timeline_jsonl(*sampler, cli.raw_args()));
    out << "timeline written to " << *path << " (" << sampler->ticks()
        << " ticks)\n";
  }
}

int cmd_systems(std::ostream& out) {
  Table table({"name", "levels", "MTBF (min)", "base time (min)"});
  for (const auto& sys : systems::table1_systems()) {
    table.add_row({sys.name, std::to_string(sys.levels()),
                   Table::num(sys.mtbf, 2), Table::num(sys.base_time, 0)});
  }
  table.print(out);
  return 0;
}

int cmd_show(const Cli& cli, std::ostream& out) {
  out << core::to_json(system_from(cli)).dump(2) << "\n";
  return 0;
}

int cmd_optimize(const Cli& cli, std::ostream& out) {
  if (const auto socket = cli.value("connect"); socket && !socket->empty()) {
    return run_connected(cli, "optimize", *socket, out);
  }
  const auto system = system_from(cli);
  const std::string technique_name = cli.get_string("technique", "dauwe");
  const auto law = law_from(cli, technique_name, "technique");
  const auto metrics_path = cli.value("metrics");
  const bool instrumented = wants_registry(cli);

  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::TelemetrySampler> sampler;
  core::TechniqueResult result;
  if (law.has_value() && !instrumented) {
    // Law-aware search through the cached engine (the technique registry
    // stays exponential-only).
    engine::EvaluationEngine eng(system, {}, law->family());
    const core::OptimizationResult best = eng.optimize();
    result.technique = "Dauwe et al.";
    result.plan = best.plan;
    result.predicted_time = best.expected_time;
    result.predicted_efficiency = best.efficiency;
  } else if (instrumented) {
    // Instrumented search under the standard scenario metric names. The
    // pool mirrors cmd_scenario's observability rule: at least two
    // workers, so pool.* reflects the real parallel shape.
    registry = std::make_unique<obs::MetricsRegistry>();
    engine::ScenarioMetrics wiring(*registry);
    util::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
    pool.attach_metrics(engine::pool_metrics(*registry));
    if (cli.has("timeline")) {
      sampler = std::make_unique<obs::TelemetrySampler>(
          *registry, sampler_options_from(cli));
      sampler->start();
    }
    if (technique_name == "dauwe") {
      // Same staged search DauweTechnique runs, driven through the cached
      // engine so the engine.* counters are exercised; the selected plan
      // is bit-identical (the engine equivalence tests cover this).
      engine::EvaluationEngine eng(system, {},
                                   law ? law->family() : nullptr);
      eng.attach_metrics(wiring.engine);
      core::OptimizerOptions optimizer_options;
      optimizer_options.metrics = &wiring.optimizer;
      const core::OptimizationResult best =
          eng.optimize(optimizer_options, &pool);
      result.technique = "Dauwe et al.";
      result.plan = best.plan;
      result.predicted_time = best.expected_time;
      result.predicted_efficiency = best.efficiency;
    } else {
      result = models::make_technique(technique_name)
                   ->select_plan(system, &pool);
    }
    if (sampler) sampler->stop();
  } else {
    result = models::make_technique(technique_name)->select_plan(system);
  }
  Table table({"field", "value"});
  table.add_row({"technique", result.technique});
  if (law) table.add_row({"failure law", law->to_string()});
  table.add_row({"plan", result.plan.to_string()});
  table.add_row({"predicted time (min)",
                 Table::num(result.predicted_time, 2)});
  table.add_row({"predicted efficiency",
                 Table::pct(result.predicted_efficiency)});
  table.print(out);
  if (const auto path = cli.value("out"); path && !path->empty()) {
    core::write_file(*path, core::to_json(result.plan).dump(2) + "\n");
    out << "plan written to " << *path << "\n";
  }
  if (registry) {
    if (metrics_path) flush_metrics(*registry, *metrics_path, cli, out);
    flush_exports(*registry, sampler.get(), cli, out);
  }
  return 0;
}

int cmd_predict(const Cli& cli, std::ostream& out) {
  if (const auto socket = cli.value("connect"); socket && !socket->empty()) {
    return run_connected(cli, "predict", *socket, out);
  }
  const auto system = system_from(cli);
  const auto plan_path = cli.value("plan");
  if (!plan_path || plan_path->empty()) {
    throw std::out_of_range("--plan=plan.json is required");
  }
  const auto plan = core::plan_from_json(
      util::Json::parse(core::read_file(*plan_path)));
  plan.validate(system);
  const std::string model_name = cli.get_string("model", "dauwe");
  const auto law = law_from(cli, model_name, "model");
  const auto metrics_path = cli.value("metrics");

  std::unique_ptr<obs::MetricsRegistry> registry;
  core::Prediction prediction;
  if (law.has_value() && !metrics_path.has_value()) {
    prediction = core::DauweModel({}, law->family()).predict(system, plan);
  } else if (metrics_path.has_value()) {
    // Instrumented path. Only the Dauwe model runs through the cached
    // engine (its engine.* counters move); other models have no
    // instrumentation points, so their registry reports zeros.
    registry = std::make_unique<obs::MetricsRegistry>();
    engine::EngineMetrics wiring;
    wiring.context_hits = &registry->counter("engine.context_cache.hits");
    wiring.context_misses =
        &registry->counter("engine.context_cache.misses");
    wiring.evaluations = &registry->counter("engine.evaluations");
    if (model_name == "dauwe") {
      engine::EvaluationEngine eng(system, {},
                                   law ? law->family() : nullptr);
      eng.attach_metrics(wiring);
      prediction = eng.predict(plan);
    } else {
      prediction = make_model(model_name)->predict(system, plan);
    }
  } else {
    prediction = make_model(model_name)->predict(system, plan);
  }
  Table table({"field", "value"});
  table.add_row({"plan", plan.to_string()});
  if (law) table.add_row({"failure law", law->to_string()});
  table.add_row({"expected time (min)",
                 Table::num(prediction.expected_time, 2)});
  table.add_row({"efficiency", Table::pct(prediction.efficiency)});
  table.print(out);
  if (registry) flush_metrics(*registry, *metrics_path, cli, out);
  return 0;
}

int cmd_simulate(const Cli& cli, std::ostream& out) {
  const auto system = system_from(cli);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto options = sim_options_from(cli);

  // Interval-based schedules bypass the pattern plumbing entirely.
  if (const auto schedule_path = cli.value("intervals");
      schedule_path && !schedule_path->empty()) {
    const auto schedule = core::interval_schedule_from_json(
        util::Json::parse(core::read_file(*schedule_path)));
    schedule.validate(system);
    const auto interval_stats =
        sim::run_trials(system, schedule, trials, seed, options);
    Table t({"metric", "value"});
    t.add_row({"schedule", schedule.to_string()});
    t.add_row({"efficiency mean",
               Table::pct(interval_stats.efficiency.mean)});
    t.add_row({"efficiency stddev",
               Table::pct(interval_stats.efficiency.stddev)});
    t.print(out);
    return 0;
  }

  core::CheckpointPlan plan;
  if (const auto plan_path = cli.value("plan");
      plan_path && !plan_path->empty()) {
    plan = core::plan_from_json(
        util::Json::parse(core::read_file(*plan_path)));
  } else {
    const auto technique =
        models::make_technique(cli.get_string("technique", "dauwe"));
    plan = technique->select_plan(system).plan;
  }
  plan.validate(system);
  sim::TrialStats stats;
  if (cli.get_bool("adaptive", false)) {
    // Horizon-aware wrapper (Sec. IV-F generalized).
    stats = sim::run_trials(system, core::make_adaptive(system, plan),
                            trials, seed, options);
  } else {
    stats = sim::run_trials(system, plan, trials, seed, options);
  }

  Table table({"metric", "value"});
  table.add_row({"plan", plan.to_string()});
  table.add_row({"trials", std::to_string(trials)});
  table.add_row({"efficiency mean", Table::pct(stats.efficiency.mean)});
  table.add_row({"efficiency stddev", Table::pct(stats.efficiency.stddev)});
  table.add_row({"95% CI half-width",
                 Table::pct(stats.efficiency.ci95_halfwidth(), 2)});
  table.add_row({"total time mean (min)",
                 Table::num(stats.total_time.mean, 1)});
  table.add_row({"mean failures/run", Table::num(stats.mean_failures, 1)});
  table.add_row({"capped trials", std::to_string(stats.capped_trials)});
  table.print(out);

  out << "\ntime shares\n";
  Table shares({"bucket", "share"});
  const auto& s = stats.time_shares;
  shares.add_row({"useful work", Table::pct(s.useful)});
  shares.add_row({"checkpoints ok", Table::pct(s.checkpoint_ok)});
  shares.add_row({"checkpoints failed", Table::pct(s.checkpoint_failed)});
  shares.add_row({"restarts ok", Table::pct(s.restart_ok)});
  shares.add_row({"restarts failed", Table::pct(s.restart_failed)});
  shares.add_row({"rework (compute)", Table::pct(s.rework_compute)});
  shares.add_row({"rework (checkpoint)", Table::pct(s.rework_checkpoint)});
  shares.add_row({"rework (restart)", Table::pct(s.rework_restart)});
  shares.print(out);
  return 0;
}

int cmd_compare(const Cli& cli, std::ostream& out) {
  const auto system = system_from(cli);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  Table table({"technique", "plan", "sim eff", "sd", "predicted",
               "pred err"});
  for (const char* name :
       {"dauwe", "di", "moody", "benoit", "daly", "young"}) {
    const auto technique = models::make_technique(name);
    const auto selected = technique->select_plan(system);
    const auto stats =
        sim::run_trials(system, selected.plan, trials, seed);
    table.add_row({selected.technique, selected.plan.to_string(),
                   Table::pct(stats.efficiency.mean),
                   Table::pct(stats.efficiency.stddev),
                   Table::pct(selected.predicted_efficiency),
                   Table::pct(selected.predicted_efficiency -
                                  stats.efficiency.mean, 2)});
  }
  table.print(out);
  return 0;
}

int cmd_sensitivity(const Cli& cli, std::ostream& out) {
  // How sharply does expected efficiency fall off around the selected
  // computation interval? (Daly's classic observation: the optimum is
  // flat, so interval estimates can be rough. The sweep quantifies how
  // flat, per system.) The tau variants share one cached evaluation
  // context through the engine's batch API.
  const auto system = system_from(cli);
  const auto technique =
      models::make_technique(cli.get_string("technique", "dauwe"));
  const auto selected = technique->select_plan(system);
  const engine::EvaluationEngine eng(system);

  static constexpr double kFactors[] = {0.25, 0.5, 0.7, 0.85, 1.0,
                                        1.2,  1.5, 2.0, 4.0};
  std::vector<core::CheckpointPlan> variants;
  core::CheckpointPlan reference = selected.plan;
  variants.push_back(reference);
  for (const double factor : kFactors) {
    core::CheckpointPlan plan = selected.plan;
    plan.tau0 = selected.plan.tau0 * factor;
    variants.push_back(plan);
  }
  const std::vector<double> times = eng.expected_times(variants);
  const double best = system.base_time / times[0];

  Table table({"tau0 factor", "tau0 (min)", "predicted eff",
               "vs optimum"});
  for (std::size_t i = 0; i < std::size(kFactors); ++i) {
    const double eff = system.base_time / times[i + 1];
    table.add_row({Table::num(kFactors[i], 2),
                   Table::num(variants[i + 1].tau0, 3), Table::pct(eff),
                   Table::pct(eff - best, 2)});
  }
  out << "plan " << selected.plan.to_string() << "\n";
  table.print(out);
  return 0;
}

int cmd_scenario(const Cli& cli, std::ostream& out, std::ostream& err) {
  // Emit mode: write a complete spec document for a system to start from.
  if (const auto emit = cli.value("emit-spec"); emit.has_value()) {
    engine::ScenarioSpec spec;
    const auto name = cli.value("system");
    if (!name || name->empty()) {
      throw std::out_of_range(
          "--system=<name|file.json> is required with --emit-spec");
    }
    spec.system = core::load_system(*name);
    // Table I names round-trip as references, files as inline documents.
    if (spec.system.name == *name) spec.system_ref = *name;
    const std::string text = spec.to_json().dump(2) + "\n";
    if (emit->empty()) {
      out << text;
    } else {
      core::write_file(*emit, text);
      out << "scenario spec written to " << *emit << "\n";
    }
    return 0;
  }

  const auto spec_path = cli.value("spec");
  if (!spec_path || spec_path->empty()) {
    throw std::out_of_range(
        "--spec=scenario.json is required (or --emit-spec)");
  }
  engine::ScenarioSpec spec = engine::ScenarioSpec::load(*spec_path);
  // Flag-vs-spec precedence: --law overrides the spec's "failure" section
  // (the flag is the more specific, per-invocation intent). The override
  // is announced on stderr so a spec whose failure law silently stops
  // mattering is never a surprise.
  if (const auto law_text = cli.value("law"); law_text && !law_text->empty()) {
    const auto flag_law = engine::DistributionSpec::parse(*law_text);
    err << "[mlck] --law=" << flag_law.to_string()
        << " takes precedence over the scenario spec's failure "
           "section (spec: "
        << spec.distribution.to_string() << ")\n";
    spec.distribution = flag_law;
  }
  if (const auto trials = cli.value("trials"); trials) {
    spec.trials = static_cast<std::size_t>(cli.get_int("trials", 200));
  }
  if (const auto seed = cli.value("seed"); seed) {
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  }
  const auto metrics_path = cli.value("metrics");
  const auto trace_path = cli.value("trace");
  if (trace_path && trace_path->empty()) {
    throw std::out_of_range("--trace requires a file path "
                            "(--trace=trace.json)");
  }
  const bool instrumented = wants_registry(cli);
  std::unique_ptr<util::ThreadPool> pool;
  // An observability run gets a pool even without --threads, so the
  // pool.* metrics (and the per-worker trace tracks) reflect the real
  // parallel execution shape (results are thread-count independent by
  // design). At least two workers: a one-worker pool degrades to the
  // sequential parallel_for path and would leave every pool.* metric at
  // zero.
  const bool observing = instrumented || trace_path.has_value();
  if (const int threads = cli.get_int("threads", 0);
      threads > 0 || observing) {
    std::size_t workers = static_cast<std::size_t>(threads > 0 ? threads : 0);
    if (workers == 0 && observing) {
      workers = std::max(2u, std::thread::hardware_concurrency());
    }
    pool = std::make_unique<util::ThreadPool>(workers);
  }
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::TelemetrySampler> sampler;
  if (instrumented) {
    registry = std::make_unique<obs::MetricsRegistry>();
    if (pool) pool->attach_metrics(engine::pool_metrics(*registry));
    if (cli.has("timeline")) {
      sampler = std::make_unique<obs::TelemetrySampler>(
          *registry, sampler_options_from(cli));
      sampler->start();
    }
  }
  std::unique_ptr<obs::TraceSink> sink;
  sim::TrialTraceCapture capture;
  if (trace_path) {
    sink = std::make_unique<obs::TraceSink>();
    sink->name_current_thread("main");
    if (pool) pool->attach_trace(sink.get());
    capture.max_trials =
        static_cast<std::size_t>(cli.get_int("trace-trials", 8));
    spec.sim.capture = &capture;
  }

  const auto outcome = engine::run_scenario(spec, pool.get(),
                                            registry.get(), sink.get());
  if (sampler) sampler->stop();
  const auto law = spec.distribution.make(spec.system);
  Table table({"field", "value"});
  table.add_row({"system", spec.system.name});
  table.add_row({"technique", outcome.selected.technique});
  table.add_row({"failure law", law->describe()});
  table.add_row({"plan", outcome.selected.plan.to_string()});
  table.add_row({"predicted time (min)",
                 Table::num(outcome.selected.predicted_time, 2)});
  table.add_row({"predicted efficiency",
                 Table::pct(outcome.selected.predicted_efficiency)});
  table.add_row({"trials", std::to_string(spec.trials)});
  table.add_row({"sim efficiency mean",
                 Table::pct(outcome.stats.efficiency.mean)});
  table.add_row({"sim efficiency stddev",
                 Table::pct(outcome.stats.efficiency.stddev)});
  table.add_row({"prediction error",
                 Table::pct(outcome.selected.predicted_efficiency -
                                outcome.stats.efficiency.mean, 2)});
  table.print(out);
  if (const auto path = cli.value("out"); path && !path->empty()) {
    core::write_file(*path,
                     core::to_json(outcome.selected.plan).dump(2) + "\n");
    out << "plan written to " << *path << "\n";
  }
  if (registry) {
    if (metrics_path) flush_metrics(*registry, *metrics_path, cli, out);
    flush_exports(*registry, sampler.get(), cli, out);
  }
  if (sink) {
    core::write_file(
        *trace_path,
        obs::chrome_trace_json(sink.get(), &capture).dump(2) + "\n");
    out << "trace written to " << *trace_path << " (" << sink->size()
        << " host spans, " << capture.trials.size()
        << " captured trials)\n";
  }
  return 0;
}

int cmd_energy(const Cli& cli, std::ostream& out) {
  const auto system = system_from(cli);
  energy::PowerModel power;
  power.checkpoint = cli.get_double("checkpoint-power", 0.7);
  power.restart = cli.get_double("restart-power", 0.6);
  power.validate();
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const core::DauweModel base;

  Table table({"objective", "plan", "sim eff", "sim energy/run"});
  struct Variant {
    const char* label;
    energy::Objective objective;
  };
  for (const Variant& v :
       {Variant{"time", energy::Objective::kTime},
        Variant{"energy", energy::Objective::kEnergy},
        Variant{"EDP", energy::Objective::kEdp}}) {
    const energy::EnergyObjectiveModel objective(base, power, v.objective);
    const auto best = core::optimize_intervals(objective, system);
    const auto stats = sim::run_trials(system, best.plan, trials, seed);
    sim::SimBreakdown shares = stats.time_shares;
    table.add_row({v.label, best.plan.to_string(),
                   Table::pct(stats.efficiency.mean),
                   Table::num(power.energy(shares) * stats.total_time.mean,
                              1)});
  }
  table.print(out);
  out << "(power draws: compute 1.0, checkpoint " << power.checkpoint
      << ", restart " << power.restart << ")\n";
  return 0;
}

int cmd_trace(const Cli& cli, std::ostream& out) {
  const auto system = system_from(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  const auto max_events =
      static_cast<std::size_t>(cli.get_int("max-events", 40));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 1));
  if (trials == 0) throw std::out_of_range("--trials must be >= 1");
  const std::string format = cli.get_string("format", "table");
  if (format != "table" && format != "chrome" && format != "jsonl") {
    throw std::out_of_range("unknown --format (use table|chrome|jsonl)");
  }
  const core::DauweTechnique technique;
  const auto selected = technique.select_plan(system);
  sim::SimOptions opts = sim_options_from(cli);

  // Instrumented runs wire the standard sim.* counters. They are
  // recorded by the multi-trial runner's aggregation loop, so the
  // single-trial path (--trials=1, which calls simulate() directly)
  // reports them at zero.
  const auto metrics_path = cli.value("metrics");
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<engine::ScenarioMetrics> wiring;
  if (wants_registry(cli)) {
    registry = std::make_unique<obs::MetricsRegistry>();
    wiring = std::make_unique<engine::ScenarioMetrics>(*registry);
    opts.metrics = &wiring->sim;
  }

  sim::TrialTraceCapture capture;
  if (trials == 1) {
    // Single-trial path: the seed drives the failure stream directly
    // (unchanged from when `trace` only did one trial, so seeds keep
    // reproducing the same timelines).
    capture.max_trials = 1;
    capture.trials.resize(1);
    opts.trace = &capture.trials[0].events;
    sim::RandomFailureSource failures(system, util::Rng(seed));
    capture.trials[0].result =
        sim::simulate(system, selected.plan, failures, opts);
    opts.trace = nullptr;
  } else {
    // Monte-Carlo batch: trial k's stream is seeded with
    // derive_stream_seed(seed, k), matching `mlck simulate`.
    capture.max_trials = trials;
    opts.capture = &capture;
    sim::run_trials(system, selected.plan, trials, seed, opts);
    opts.capture = nullptr;
  }

  const auto flush_obs = [&] {
    if (registry) {
      if (metrics_path) flush_metrics(*registry, *metrics_path, cli, out);
      flush_exports(*registry, nullptr, cli, out);
    }
  };

  int code = 0;
  if (cli.get_bool("audit", false)) {
    for (const auto& trial : capture.trials) {
      const auto report =
          obs::audit_trial_trace(system, trial.result, trial.events);
      if (report.ok()) {
        out << "trial " << trial.trial << ": audit ok ("
            << trial.events.size()
            << " events tile [0, total_time]; breakdown reconstructed "
               "bit-for-bit)\n";
      } else {
        code = 1;
        out << "trial " << trial.trial << ": audit FAILED\n";
        for (const auto& error : report.errors) {
          out << "  " << error << "\n";
        }
      }
    }
  }

  if (format != "table") {
    const std::string text =
        format == "chrome"
            ? obs::chrome_trace_json(nullptr, &capture).dump(2) + "\n"
            : obs::trace_jsonl(nullptr, &capture);
    if (const auto path = cli.value("out"); path && !path->empty()) {
      core::write_file(*path, text);
      out << "trace written to " << *path << "\n";
    } else {
      out << text;
    }
    flush_obs();
    return code;
  }

  const auto& trace = capture.trials[0].events;
  const auto& result = capture.trials[0].result;
  out << "plan " << selected.plan.to_string() << "\n";
  Table table({"t (min)", "event", "level", "duration", "outcome"});
  const char* names[] = {"compute", "checkpoint", "restart",
                         "scratch-restart"};
  for (std::size_t i = 0; i < trace.size() && i < max_events; ++i) {
    const auto& ev = trace[i];
    std::string level_cell = "-";
    if (ev.system_level >= 0) {
      level_cell = "L";
      level_cell += std::to_string(ev.system_level + 1);
    }
    const std::string outcome = [&]() -> std::string {
      if (ev.completed) return "ok";
      if (ev.truncated_by_cap) {
        return "capped";  // truncated at the time cap, no failure
      }
      return "failed (severity " +
             std::to_string(ev.failure_severity + 1) + ")";
    }();
    table.add_row({Table::num(ev.start, 2),
                   names[static_cast<int>(ev.kind)], level_cell,
                   Table::num(ev.end - ev.start, 2), outcome});
  }
  table.print(out);
  out << "total " << Table::num(result.total_time, 1) << " min, efficiency "
      << Table::pct(result.efficiency()) << ", " << trace.size()
      << " events\n";
  flush_obs();
  return code;
}

int cmd_report(const Cli& cli, std::ostream& out) {
  // Runs a scenario fully instrumented — metrics registry, trace sink,
  // and telemetry sampler all attached — then joins span durations with
  // the per-phase counters into the cost-attribution table. The run
  // itself is bit-identical to `mlck scenario` on the same spec
  // (instrumentation is observe-only).
  const auto spec_path = cli.value("spec");
  if (!spec_path || spec_path->empty()) {
    throw std::out_of_range("--spec=scenario.json is required");
  }
  engine::ScenarioSpec spec = engine::ScenarioSpec::load(*spec_path);
  if (const auto trials = cli.value("trials"); trials) {
    spec.trials = static_cast<std::size_t>(cli.get_int("trials", 200));
  }
  if (const auto seed = cli.value("seed"); seed) {
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  }

  obs::MetricsRegistry registry;
  obs::TraceSink sink;
  sink.name_current_thread("main");
  const int threads = cli.get_int("threads", 0);
  util::ThreadPool pool(threads > 0
                            ? static_cast<std::size_t>(threads)
                            : std::max(2u, std::thread::hardware_concurrency()));
  pool.attach_metrics(engine::pool_metrics(registry));
  pool.attach_trace(&sink);
  obs::TelemetrySampler sampler(registry, sampler_options_from(cli));
  sampler.start();
  const auto outcome = engine::run_scenario(spec, &pool, &registry, &sink);
  sampler.stop();

  const obs::RegistrySnapshot snapshot = registry.snapshot();
  const auto phases = obs::attribute_costs(sink.events(), snapshot);
  out << "cost attribution (" << sink.size() << " spans, "
      << sampler.ticks() << " sampler ticks)\n";
  obs::print_attribution(out, phases);
  out << "plan " << outcome.selected.plan.to_string()
      << ", sim efficiency " << Table::pct(outcome.stats.efficiency.mean)
      << "\n";

  if (const auto path = cli.value("json"); path && !path->empty()) {
    util::Json doc = obs::attribution_json(phases);
    doc.make_object()["meta"] =
        obs::sidecar_meta(cli.raw_args(), snapshot.metric_count());
    core::write_file(*path, doc.dump(2) + "\n");
    out << "report written to " << *path << "\n";
  }
  if (const auto path = cli.value("metrics"); path) {
    flush_metrics(registry, *path, cli, out);
  }
  flush_exports(registry, &sampler, cli, out);
  return 0;
}

/// One `--laws=` pool entry as a VerifyLaw. Entries use the DistributionSpec
/// family grammar ("weibull:shape=0.7"); mean/scale make no sense for a
/// verification pool (the harness resolves time scales per generated
/// system) and are rejected.
verify::VerifyLaw to_verify_law(const engine::DistributionSpec& spec) {
  if (spec.mean > 0.0 || spec.scale > 0.0) {
    throw std::out_of_range(
        "--laws entries name law families; mean/scale are not allowed");
  }
  switch (spec.kind) {
    case engine::DistributionSpec::Kind::kWeibull:
      return verify::weibull_verify_law(spec.shape);
    case engine::DistributionSpec::Kind::kLogNormal:
      return verify::lognormal_verify_law(spec.sigma);
    case engine::DistributionSpec::Kind::kExponential:
      break;
  }
  return verify::exponential_verify_law();
}

/// Parses `--laws=all` or a '+'-separated pool ("exponential+weibull:
/// shape=0.5+lognormal"). '+' separates entries because ',' already
/// separates parameters inside one entry.
std::vector<verify::VerifyLaw> parse_law_pool(const std::string& text) {
  if (text == "all") {
    return {verify::exponential_verify_law(), verify::weibull_verify_law(0.7),
            verify::lognormal_verify_law(1.0)};
  }
  std::vector<verify::VerifyLaw> pool;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t sep = text.find('+', start);
    const std::size_t end = sep == std::string::npos ? text.size() : sep;
    const std::string entry = text.substr(start, end - start);
    if (entry.empty()) {
      throw std::out_of_range("--laws: empty pool entry in \"" + text + "\"");
    }
    pool.push_back(to_verify_law(engine::DistributionSpec::parse(entry)));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return pool;
}

int cmd_selftest(const Cli& cli, std::ostream& out) {
  verify::SelftestOptions options;
  options.cases = static_cast<std::size_t>(cli.get_int("cases", 200));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  options.only_case = cli.get_int("case", -1);
  options.trials = static_cast<std::size_t>(cli.get_int("trials", 600));
  options.welch_systems =
      static_cast<std::size_t>(cli.get_int("welch-systems", 8));
  options.alpha = cli.get_double("alpha", 0.01);
  options.welch_gating = cli.get_bool("welch-gate", false);
  if (const auto laws = cli.value("laws"); laws && !laws->empty()) {
    options.laws_flag = *laws;
    options.generator.laws = parse_law_pool(*laws);
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (const int threads = cli.get_int("threads", 0); threads > 0) {
    pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(threads));
  }
  const verify::SelftestReport report =
      verify::run_selftest(options, pool.get(), &out);
  if (const auto path = cli.value("out"); path && !path->empty()) {
    core::write_file(*path, report.to_json().dump(2) + "\n");
    out << "report written to " << *path << "\n";
  }
  out << (report.passed() ? "selftest PASSED" : "selftest FAILED") << "\n";
  return report.passed() ? 0 : 1;
}

/// Self-pipe target for the daemon's SIGINT/SIGTERM handler. Only
/// cmd_serve installs the handler, and it clears the pointer before the
/// pipe dies.
util::Pipe* g_serve_signal_pipe = nullptr;

void serve_signal_handler(int) {
  if (g_serve_signal_pipe != nullptr) g_serve_signal_pipe->poke();
}

int cmd_serve(const Cli& cli, std::ostream& out) {
  const auto socket = cli.value("socket");
  if (!socket || socket->empty()) {
    throw std::out_of_range("--socket=<path> is required");
  }
  serve::ServerOptions options;
  options.socket_path = *socket;
  options.threads =
      static_cast<std::size_t>(std::max(0, cli.get_int("threads", 0)));
  options.queue_limit =
      static_cast<std::size_t>(std::max(1, cli.get_int("queue-limit", 64)));
  options.cache_capacity = static_cast<std::size_t>(
      std::max(0, cli.get_int("cache-capacity", 128)));

  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::TelemetrySampler> sampler;
  if (wants_registry(cli)) {
    registry = std::make_unique<obs::MetricsRegistry>();
    options.registry = registry.get();
    if (cli.has("timeline")) {
      sampler = std::make_unique<obs::TelemetrySampler>(
          *registry, sampler_options_from(cli));
      sampler->start();
    }
  }

  // Self-pipe signal handling: the handler only writes a byte, the serve
  // loop below does all real work on the main thread.
  util::Pipe signal_pipe;
  g_serve_signal_pipe = &signal_pipe;
  struct sigaction action = {};
  action.sa_handler = serve_signal_handler;
  struct sigaction old_int = {};
  struct sigaction old_term = {};
  sigaction(SIGINT, &action, &old_int);
  sigaction(SIGTERM, &action, &old_term);

  int code = 0;
  try {
    serve::Server server(options);
    out << "mlckd listening on " << server.socket_path() << "\n"
        << std::flush;
    // Park until either a signal or a client's `shutdown` op.
    (void)util::wait_either_readable(signal_pipe.read_fd(),
                                     server.stop_event_fd());
    out << "mlckd draining\n" << std::flush;
    server.stop();
  } catch (...) {
    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);
    g_serve_signal_pipe = nullptr;
    throw;
  }
  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  g_serve_signal_pipe = nullptr;

  if (sampler) sampler->stop();
  if (registry) {
    if (const auto path = cli.value("metrics")) {
      flush_metrics(*registry, *path, cli, out);
    }
    flush_exports(*registry, sampler.get(), cli, out);
  }
  out << "mlckd stopped\n";
  return code;
}

/// `--connect=<socket>` thin-client mode shared by optimize and predict:
/// builds the request from the same flags the local path uses (the
/// system resolves locally, so file-path systems work, and travels
/// inline), round-trips it through the daemon, and renders the daemon's
/// deterministic result fields.
int run_connected(const Cli& cli, const std::string& op,
                  const std::string& socket, std::ostream& out) {
  const auto system = system_from(cli);
  const std::string technique =
      cli.get_string(op == "optimize" ? "technique" : "model", "dauwe");
  if (technique != "dauwe") {
    throw std::out_of_range("--connect serves the dauwe " +
                            std::string(op == "optimize" ? "technique"
                                                         : "model") +
                            " only (the daemon's evaluation-engine "
                            "contract)");
  }
  util::Json::Object request;
  request["op"] = util::Json(op);
  request["system"] = core::to_json(system);
  if (const auto law = law_from(cli, technique, "request")) {
    request["failure"] = law->to_json();
  }
  if (op == "predict") {
    const auto plan_path = cli.value("plan");
    if (!plan_path || plan_path->empty()) {
      throw std::out_of_range("--plan=plan.json is required");
    }
    request["plan"] = util::Json::parse(core::read_file(*plan_path));
  }

  serve::Client client(socket);
  const util::Json response = client.call(util::Json(std::move(request)));
  if (!response.at("ok").as_bool()) {
    const util::Json& error = response.at("error");
    throw std::runtime_error("daemon error [" +
                             error.at("code").as_string() + "]: " +
                             error.at("message").as_string());
  }
  const util::Json& result = response.at("result");
  const auto plan = core::plan_from_json(result.at("plan"));
  Table table({"field", "value"});
  table.add_row({"served by", socket});
  table.add_row({"plan", plan.to_string()});
  table.add_row({"expected time (min)",
                 Table::num(result.at("expected_time").as_number(), 2)});
  table.add_row({"efficiency",
                 Table::pct(result.at("efficiency").as_number())});
  table.print(out);
  if (const auto path = cli.value("out"); path && !path->empty()) {
    core::write_file(*path, core::to_json(plan).dump(2) + "\n");
    out << "plan written to " << *path << "\n";
  }
  return 0;
}

}  // namespace

std::string usage() {
  return "usage: mlck <systems|show|optimize|predict|simulate|compare|energy|"
         "sensitivity|trace|scenario|report|selftest|serve>"
         " [--system=<name|file.json>] [options]\n"
         "run `mlck <command>` with a missing argument for its specific"
         " requirements; see src/app/commands.h for the full synopsis\n";
}

int run_command(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty()) {
    err << usage();
    return 2;
  }
  const std::string& command = args[0];
  // The command token rides along (as a positional argument the commands
  // ignore) so Cli::raw_args() reproduces the full invocation for the
  // artifact `meta` sections.
  std::vector<const char*> argv{"mlck", command.c_str()};
  for (std::size_t i = 1; i < args.size(); ++i) {
    argv.push_back(args[i].c_str());
  }
  const Cli cli(static_cast<int>(argv.size()), argv.data());

  try {
    int code = 2;
    if (command == "systems") code = cmd_systems(out);
    else if (command == "show") code = cmd_show(cli, out);
    else if (command == "optimize") code = cmd_optimize(cli, out);
    else if (command == "predict") code = cmd_predict(cli, out);
    else if (command == "simulate") code = cmd_simulate(cli, out);
    else if (command == "compare") code = cmd_compare(cli, out);
    else if (command == "energy") code = cmd_energy(cli, out);
    else if (command == "sensitivity") code = cmd_sensitivity(cli, out);
    else if (command == "trace") code = cmd_trace(cli, out);
    else if (command == "scenario") code = cmd_scenario(cli, out, err);
    else if (command == "report") code = cmd_report(cli, out);
    else if (command == "selftest") code = cmd_selftest(cli, out);
    else if (command == "serve") code = cmd_serve(cli, out);
    else {
      err << "unknown command: " << command << "\n" << usage();
      return 2;
    }
    const auto unknown = cli.unrecognized();
    if (!unknown.empty()) {
      err << "warning: unrecognized option(s):";
      for (const auto& u : unknown) err << " --" << u;
      err << "\n";
    }
    return code;
  } catch (const std::out_of_range& e) {
    err << "error: " << e.what() << "\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mlck::app

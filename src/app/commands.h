#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlck::app {

/// Entry point of the `mlck` command-line tool, factored out of main()
/// so the test suite can drive every subcommand against in-memory
/// streams.
///
/// Usage:
///   mlck systems
///   mlck show     --system=<name|file.json>
///   mlck optimize --system=... [--technique=dauwe] [--out=plan.json]
///                 [--connect=<socket>]
///                 [--metrics[=metrics.json]] [--openmetrics=metrics.txt]
///                 [--timeline=timeline.jsonl] [--sample-period-ms=50]
///   mlck predict  --system=... --plan=plan.json [--model=dauwe]
///                 [--connect=<socket>] [--metrics[=metrics.json]]
///   mlck simulate --system=... (--plan=plan.json | --technique=dauwe |
///                 --intervals=schedule.json) [--adaptive]
///                 [--trials=200] [--seed=1] [--policy=retry|escalate]
///   mlck compare  --system=... [--trials=100]
///   mlck energy   --system=... [--checkpoint-power=0.7] [--restart-power=0.6]
///   mlck sensitivity --system=... [--technique=dauwe]
///   mlck trace    --system=... [--seed=4] [--max-events=40] [--trials=1]
///                 [--format=table|chrome|jsonl] [--audit] [--out=trace.json]
///                 [--metrics[=metrics.json]] [--openmetrics=metrics.txt]
///   mlck scenario --spec=scenario.json [--trials=...] [--seed=...]
///                 [--threads=0] [--out=plan.json]
///                 [--metrics[=metrics.json]] [--openmetrics=metrics.txt]
///                 [--timeline=timeline.jsonl] [--sample-period-ms=50]
///                 [--trace=trace.json] [--trace-trials=8]
///   mlck scenario --system=... --emit-spec[=scenario.json]
///   mlck report   --spec=scenario.json [--trials=...] [--seed=...]
///                 [--threads=0] [--json=report.json]
///                 [--metrics[=metrics.json]] [--openmetrics=metrics.txt]
///                 [--timeline=timeline.jsonl] [--sample-period-ms=50]
///   mlck selftest [--cases=200] [--seed=42] [--case=K]
///                 [--trials=200] [--welch-systems=8] [--alpha=0.01]
///                 [--welch-gate] [--threads=0] [--out=report.json]
///   mlck serve    --socket=<path> [--threads=0] [--queue-limit=64]
///                 [--cache-capacity=128] [--metrics[=metrics.json]]
///                 [--openmetrics=metrics.txt] [--timeline=timeline.jsonl]
///                 [--sample-period-ms=50]
///
/// `serve` runs mlckd, the persistent advisory daemon: a Unix-domain
/// socket speaking a length-prefixed JSON protocol (docs/SERVING.md).
/// Requests are admitted into a bounded queue, coalesced by canonical
/// request fingerprint so one optimizer run satisfies every waiter
/// asking the same question, executed on a shared thread pool, and
/// cached in a bounded multi-tenant LRU plan cache. Responses are
/// byte-identical to the direct evaluation path — cold, warm, or
/// coalesced. The daemon drains gracefully on SIGINT/SIGTERM or a
/// client `shutdown` op (in-flight work completes, new admissions are
/// rejected with a named error, telemetry flushes, exit 0). `optimize`
/// and `predict` gain `--connect=<socket>` to round-trip through a
/// running daemon instead of computing locally.
///
/// `selftest` runs the randomized verification harness (src/verify,
/// docs/TESTING.md): generated cases checked against a numeric-quadrature
/// oracle, cross-implementation bit-identity, metamorphic properties, and
/// optimizer dominance, then a model-vs-simulator Welch validation.
/// Every failure line carries the case's stream seed and a one-line
/// replay command (`--case=K` reruns exactly that case). `--out` writes
/// the JSON report; exit 1 on any invariant failure (Welch rejections
/// gate only with `--welch-gate`).
///
/// `scenario` drives one declarative engine::ScenarioSpec end to end:
/// plan selection through the cached evaluation engine, then Monte-Carlo
/// validation under the spec's failure distribution. `--emit-spec` writes
/// a complete spec document for the given system to start from.
/// `--metrics=file.json` (on `scenario`, `optimize`, and `predict`)
/// writes an observability sidecar (engine cache, optimizer sweep,
/// simulator, and thread-pool counters; schema and metric names in
/// docs/OBSERVABILITY.md) next to the results; with no file the metrics
/// tables are printed after the report. Instrumentation is observe-only:
/// results are identical with and without it.
///
/// `scenario --trace=trace.json` writes a Chrome trace-event JSON file
/// (loadable in Perfetto / chrome://tracing) with host-side spans — plan
/// selection, optimizer sweep slices, context builds, pool tasks — one
/// track per pool worker, plus the event streams of the first
/// `--trace-trials` simulated trials, one track per trial.
///
/// `--openmetrics=file.txt` (on `scenario`, `optimize`, `trace`, and
/// `report`) writes the final metric values in the OpenMetrics /
/// Prometheus text exposition format. `--timeline=file.jsonl` (on
/// `scenario`, `optimize`, and `report`) attaches a background
/// obs::TelemetrySampler for the duration of the run and writes the
/// sampled per-metric time series — cumulative values plus derived
/// rates — as JSON Lines; `--sample-period-ms` sets its cadence. Both
/// are observe-only like `--metrics`.
///
/// `report` runs a scenario spec fully instrumented and prints the
/// per-phase cost attribution: wall time per span name (self vs nested
/// child time) joined with the phase's unit-of-work counter into an
/// events/sec throughput column (docs/OBSERVABILITY.md, "Cost
/// attribution"). `--json` writes the same table as JSON.
///
/// `trace` replays one deterministic trial (or `--trials=K` with derived
/// per-trial seeds) of the Dauwe-selected plan. `--format` picks the
/// event table, Chrome trace JSON, or JSONL; `--audit` replays each
/// captured stream through obs::audit_trial_trace and exits 1 unless the
/// events tile [0, total_time] and rebuild the trial's SimBreakdown
/// bit-for-bit (docs/OBSERVABILITY.md, "Tracing").
///
/// `--system` accepts a Table I name (M, B, D1..D9) or a path to a JSON
/// system document (see core/serialize.h for the schema).
///
/// Returns a process exit code: 0 success, 2 usage error, 1 runtime
/// failure (message on @p err).
int run_command(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// One-line usage summary (printed on bad invocations).
std::string usage();

}  // namespace mlck::app

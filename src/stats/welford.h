#pragma once

#include <cstddef>

namespace mlck::stats {

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long streams (no catastrophic cancellation of
/// sum-of-squares), and mergeable so per-thread accumulators can be
/// combined after a parallel Monte-Carlo run.
class Welford {
 public:
  /// Accumulates one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (Chan et al. parallel update).
  void merge(const Welford& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mlck::stats

#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mlck::stats {

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

WelchResult welch_test(const Summary& a, const Summary& b) noexcept {
  WelchResult r;
  if (a.count < 2 || b.count < 2) return r;
  const double va = a.stddev * a.stddev / static_cast<double>(a.count);
  const double vb = b.stddev * b.stddev / static_cast<double>(b.count);
  const double se = std::sqrt(va + vb);
  if (se == 0.0) {
    r.statistic = (a.mean == b.mean) ? 0.0 : std::copysign(
        std::numeric_limits<double>::infinity(), a.mean - b.mean);
    r.p_two_sided = (a.mean == b.mean) ? 1.0 : 0.0;
    return r;
  }
  r.statistic = (a.mean - b.mean) / se;
  r.p_two_sided = 2.0 * normal_cdf(-std::abs(r.statistic));
  return r;
}

}  // namespace mlck::stats

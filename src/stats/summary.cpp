#include "stats/summary.h"

#include <cmath>

namespace mlck::stats {

double Summary::ci95_halfwidth() const noexcept {
  if (count < 2) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<double>(count));
}

Summary summarize(const Welford& w) noexcept {
  Summary s;
  s.count = w.count();
  s.mean = w.mean();
  s.stddev = w.stddev();
  s.min = w.min();
  s.max = w.max();
  return s;
}

}  // namespace mlck::stats

#pragma once

#include <cstddef>

#include "stats/welford.h"

namespace mlck::stats {

/// Point estimate with dispersion for one measured quantity (e.g. the
/// simulated efficiency of a technique on one test system).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Half-width of the normal-approximation 95% confidence interval for
  /// the mean (z = 1.96; the experiments use n >= 200, where Student-t and
  /// normal quantiles agree to three digits).
  double ci95_halfwidth() const noexcept;
};

/// Snapshot of a Welford accumulator.
Summary summarize(const Welford& w) noexcept;

}  // namespace mlck::stats

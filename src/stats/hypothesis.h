#pragma once

#include "stats/summary.h"

namespace mlck::stats {

/// Result of a two-sample Welch test for a difference in means.
struct WelchResult {
  double statistic = 0.0;   ///< Welch z/t statistic (a - b).
  double p_two_sided = 1.0; ///< normal-approximation two-sided p-value.

  /// True when the two-sided p-value clears the given significance level
  /// (default 5%, matching the paper's "95% confidence" claim in Sec. IV-F).
  bool significant(double alpha = 0.05) const noexcept {
    return p_two_sided < alpha;
  }
};

/// Welch's unequal-variance test comparing the means of two summaries.
///
/// The p-value uses the standard normal tail rather than Student-t: every
/// comparison in the reproduction has n >= 200 per arm, where the
/// difference is below 1e-3 and an incomplete-beta implementation would be
/// dead weight.
WelchResult welch_test(const Summary& a, const Summary& b) noexcept;

/// Standard normal CDF via std::erfc.
double normal_cdf(double z) noexcept;

}  // namespace mlck::stats

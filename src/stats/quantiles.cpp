#include "stats/quantiles.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mlck::stats {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// @p sample without its NaN values, sorted (infinities order fine).
/// NaN must never reach the sort: std::sort on a range containing NaN
/// violates strict weak ordering (undefined behaviour, garbage
/// quantiles).
std::vector<double> sorted_without_nan(std::span<const double> sample) {
  std::vector<double> sorted;
  sorted.reserve(sample.size());
  for (const double v : sample) {
    if (!std::isnan(v)) sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

double quantile_of_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return kNaN;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(position));
  const double fraction = position - std::floor(position);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

}  // namespace

double quantile(std::span<const double> sample, double q) {
  return quantile_of_sorted(sorted_without_nan(sample), q);
}

Quantiles summary_quantiles(std::span<const double> sample) {
  const std::vector<double> sorted = sorted_without_nan(sample);
  Quantiles out;
  out.p05 = quantile_of_sorted(sorted, 0.05);
  out.p25 = quantile_of_sorted(sorted, 0.25);
  out.median = quantile_of_sorted(sorted, 0.50);
  out.p75 = quantile_of_sorted(sorted, 0.75);
  out.p95 = quantile_of_sorted(sorted, 0.95);
  return out;
}

}  // namespace mlck::stats

#include "stats/quantiles.h"

#include <algorithm>
#include <cmath>

namespace mlck::stats {

namespace {

double quantile_of_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(position));
  const double fraction = position - std::floor(position);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

}  // namespace

double quantile(std::span<const double> sample, double q) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_of_sorted(sorted, q);
}

Quantiles summary_quantiles(std::span<const double> sample) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  Quantiles out;
  out.p05 = quantile_of_sorted(sorted, 0.05);
  out.p25 = quantile_of_sorted(sorted, 0.25);
  out.median = quantile_of_sorted(sorted, 0.50);
  out.p75 = quantile_of_sorted(sorted, 0.75);
  out.p95 = quantile_of_sorted(sorted, 0.95);
  return out;
}

}  // namespace mlck::stats

#pragma once

#include <span>
#include <vector>

namespace mlck::stats {

/// Distribution quantiles of a sample (used to characterize the heavier
/// tails that level-skipping plans show in Figure 5's variance
/// discussion: the mean improves while the low quantiles stretch).
struct Quantiles {
  double p05 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Linear-interpolation quantile (type-7, the R/NumPy default) of an
/// unsorted sample. @p q in [0, 1] (clamped outside).
///
/// NaN handling: NaN samples are ignored — they carry no order
/// information and sorting them is undefined behaviour, so they are
/// filtered before the sort. Convention for an empty sample (or one that
/// is all NaN): the quantile is quiet NaN — "no data" propagates rather
/// than masquerading as 0.
double quantile(std::span<const double> sample, double q);

/// The five standard summary quantiles in one pass (sorts a copy once).
/// Same NaN/empty convention as quantile().
Quantiles summary_quantiles(std::span<const double> sample);

}  // namespace mlck::stats

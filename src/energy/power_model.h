#pragma once

#include "core/model.h"
#include "sim/accounting.h"

namespace mlck::energy {

/// Per-activity electrical power draw, in arbitrary consistent units
/// (e.g. MW for an exascale machine). The paper's test system B comes
/// from Balaprakash et al. [19], which studies exactly this energy /
/// run-time trade-off for multilevel checkpointing; this module is the
/// library's implementation of that extension.
///
/// Checkpoint and restart phases typically draw less than full-tilt
/// computation (CPUs stall on I/O), which is what makes energy-optimal
/// schedules differ from time-optimal ones: checkpoint time is cheaper
/// than compute time, so the energy optimum checkpoints more eagerly
/// than the time optimum whenever failures are frequent.
struct PowerModel {
  double compute = 1.0;     ///< during useful work and re-computation
  double checkpoint = 0.7;  ///< during checkpoint I/O (success or failure)
  double restart = 0.6;     ///< during restart I/O (success or failure)

  /// Energy of one simulated run from its time breakdown.
  double energy(const sim::SimBreakdown& breakdown) const noexcept;

  /// Expected energy of a run from a model prediction's breakdown.
  double energy(const core::ModelBreakdown& breakdown) const noexcept;

  /// Throws std::invalid_argument on negative draws.
  void validate() const;
};

/// What the energy-aware optimizer minimizes.
enum class Objective {
  kTime,    ///< expected completion time (the paper's objective)
  kEnergy,  ///< expected energy
  kEdp,     ///< energy-delay product, E * T
};

/// ExecutionTimeModel adapter that scores plans by expected energy (or
/// EDP) under the Dauwe model's event breakdown, so the standard
/// brute-force optimizer can search for energy-optimal checkpoint
/// intervals unchanged. The returned scalar is the objective value, not
/// a time; only its ordering matters to the optimizer.
class EnergyObjectiveModel : public core::ExecutionTimeModel {
 public:
  EnergyObjectiveModel(const core::ExecutionTimeModel& base,
                       PowerModel power, Objective objective);

  double expected_time(const systems::SystemConfig& system,
                       const core::CheckpointPlan& plan) const override;

 private:
  const core::ExecutionTimeModel& base_;
  PowerModel power_;
  Objective objective_;
};

}  // namespace mlck::energy

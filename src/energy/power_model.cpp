#include "energy/power_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mlck::energy {

double PowerModel::energy(const sim::SimBreakdown& b) const noexcept {
  const double compute_time =
      b.useful + b.rework_compute + b.rework_checkpoint + b.rework_restart;
  const double checkpoint_time = b.checkpoint_ok + b.checkpoint_failed;
  const double restart_time = b.restart_ok + b.restart_failed;
  return compute * compute_time + checkpoint * checkpoint_time +
         restart * restart_time;
}

double PowerModel::energy(const core::ModelBreakdown& b) const noexcept {
  const double compute_time = b.compute + b.rework_compute +
                              b.rework_checkpoint + b.scratch_rework;
  const double checkpoint_time = b.checkpoint_ok + b.checkpoint_failed;
  const double restart_time = b.restart_ok + b.restart_failed;
  return compute * compute_time + checkpoint * checkpoint_time +
         restart * restart_time;
}

void PowerModel::validate() const {
  if (compute < 0.0 || checkpoint < 0.0 || restart < 0.0) {
    throw std::invalid_argument("PowerModel: negative power draw");
  }
}

EnergyObjectiveModel::EnergyObjectiveModel(
    const core::ExecutionTimeModel& base, PowerModel power,
    Objective objective)
    : base_(base), power_(power), objective_(objective) {
  power_.validate();
}

double EnergyObjectiveModel::expected_time(
    const systems::SystemConfig& system,
    const core::CheckpointPlan& plan) const {
  if (objective_ == Objective::kTime) {
    return base_.expected_time(system, plan);
  }
  const core::Prediction prediction = base_.predict(system, plan);
  if (!std::isfinite(prediction.expected_time)) {
    return std::numeric_limits<double>::infinity();
  }
  const double e = power_.energy(prediction.breakdown);
  if (objective_ == Objective::kEnergy) return e;
  return e * prediction.expected_time;  // EDP
}

}  // namespace mlck::energy

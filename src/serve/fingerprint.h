#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mlck::serve {

/// FNV-1a 64-bit over @p bytes: the advisory service's system
/// fingerprint hash. Collisions are harmless for correctness — the plan
/// cache and the coalescing map are keyed by the full canonical request
/// text and use the hash only for display (`stats` op, logs) — so a
/// small, dependency-free hash is the right tool.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// The hash as 16 lowercase hex digits ("a3f0...").
std::string fingerprint_hex(std::string_view canonical_key);

}  // namespace mlck::serve

#include "serve/protocol.h"

#include "util/socket.h"

namespace mlck::serve {

void encode_frame_header(std::size_t size, unsigned char out[4]) noexcept {
  const auto value = static_cast<std::uint32_t>(size);
  out[0] = static_cast<unsigned char>((value >> 24) & 0xFF);
  out[1] = static_cast<unsigned char>((value >> 16) & 0xFF);
  out[2] = static_cast<unsigned char>((value >> 8) & 0xFF);
  out[3] = static_cast<unsigned char>(value & 0xFF);
}

std::uint32_t decode_frame_header(const unsigned char header[4]) noexcept {
  return (static_cast<std::uint32_t>(header[0]) << 24) |
         (static_cast<std::uint32_t>(header[1]) << 16) |
         (static_cast<std::uint32_t>(header[2]) << 8) |
         static_cast<std::uint32_t>(header[3]);
}

std::string encode_frame(std::string_view payload) {
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(payload.size(), header);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(reinterpret_cast<const char*>(header), kFrameHeaderBytes);
  out.append(payload);
  return out;
}

const char* frame_status_name(FrameStatus status) noexcept {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kEmpty: return "empty";
    case FrameStatus::kError: return "error";
  }
  return "unknown";
}

FrameStatus read_frame(int fd, std::string& payload,
                       std::size_t max_bytes) {
  payload.clear();
  unsigned char header[kFrameHeaderBytes];
  const long got = util::read_exact(fd, header, kFrameHeaderBytes);
  if (got == 0) return FrameStatus::kClosed;
  if (got < 0) return FrameStatus::kError;
  if (static_cast<std::size_t>(got) < kFrameHeaderBytes) {
    return FrameStatus::kTruncated;
  }
  const std::uint32_t length = decode_frame_header(header);
  if (length == 0) return FrameStatus::kEmpty;
  if (length > max_bytes) return FrameStatus::kOversized;
  payload.resize(length);
  const long body = util::read_exact(fd, payload.data(), length);
  if (body < 0) {
    payload.clear();
    return FrameStatus::kError;
  }
  if (static_cast<std::size_t>(body) < length) {
    payload.clear();
    return FrameStatus::kTruncated;
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  return util::write_all(fd, frame.data(), frame.size());
}

}  // namespace mlck::serve

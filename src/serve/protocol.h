#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mlck::serve {

/// Wire framing of the mlckd advisory protocol (docs/SERVING.md): every
/// message — request and response alike — is one frame:
///
///   +----------------------+----------------------------+
///   | length: 4 bytes,     | payload: `length` bytes of |
///   | unsigned big-endian  | UTF-8 JSON text            |
///   +----------------------+----------------------------+
///
/// The length counts payload bytes only. Zero-length frames are invalid
/// (there is no empty JSON document). Frames above kMaxFrameBytes are
/// rejected without buffering the payload, so a hostile or corrupt
/// length header cannot make the daemon allocate gigabytes.
inline constexpr std::size_t kFrameHeaderBytes = 4;
inline constexpr std::size_t kMaxFrameBytes = 8u << 20;  // 8 MiB

/// Renders the 4-byte header for a payload of @p size bytes.
void encode_frame_header(std::size_t size, unsigned char out[4]) noexcept;

/// Parses a 4-byte header into the payload length.
std::uint32_t decode_frame_header(const unsigned char header[4]) noexcept;

/// Header + payload as one contiguous buffer (what write_frame sends).
std::string encode_frame(std::string_view payload);

/// Outcome of reading one frame from a descriptor.
enum class FrameStatus {
  kOk,         ///< a complete frame was read into the payload
  kClosed,     ///< clean EOF: the peer closed between frames
  kTruncated,  ///< the peer closed mid-header or mid-payload
  kOversized,  ///< the header announced more than @p max_bytes
  kEmpty,      ///< the header announced a zero-length payload
  kError,      ///< read(2) error
};

const char* frame_status_name(FrameStatus status) noexcept;

/// Reads one complete frame (blocking; loops over partial reads, so
/// byte-at-a-time writers are fine). On kOk @p payload holds the JSON
/// text; on any other status the payload is empty and the connection
/// should be answered with a protocol error (kOversized / kEmpty — the
/// peer may still be listening) or dropped (kClosed / kTruncated /
/// kError — there is nobody left to answer).
FrameStatus read_frame(int fd, std::string& payload,
                       std::size_t max_bytes = kMaxFrameBytes);

/// Writes one frame (header + payload). False when the peer is gone.
bool write_frame(int fd, std::string_view payload);

}  // namespace mlck::serve

#include "serve/request.h"

#include <stdexcept>
#include <utility>

#include "core/serialize.h"
#include "core/technique.h"
#include "systems/test_systems.h"

namespace mlck::serve {

namespace {

using util::Json;

Op op_from_name(const std::string& name) {
  if (name == "ping") return Op::kPing;
  if (name == "stats") return Op::kStats;
  if (name == "shutdown") return Op::kShutdown;
  if (name == "optimize") return Op::kOptimize;
  if (name == "predict") return Op::kPredict;
  if (name == "scenario") return Op::kScenario;
  throw std::invalid_argument(
      "request: unknown op \"" + name +
      "\" (use ping|stats|shutdown|optimize|predict|scenario)");
}

/// Same strictness rule as the scenario parser: any key outside @p known
/// is an error naming the key, never silently ignored.
void require_keys(const Json& doc, const char* context,
                  std::initializer_list<const char*> known) {
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::invalid_argument(std::string("request: unknown key \"") +
                                  key + "\" for op " + context);
    }
  }
}

/// Resolves the request "system" member into @p spec. Named systems go
/// through the Table I registry only — core::load_system's path fallback
/// would turn a request string into a server-side file read.
void resolve_system(const Json& sys, engine::ScenarioSpec& spec) {
  if (sys.is_string()) {
    spec.system_ref = sys.as_string();
    try {
      spec.system = systems::table1_system(spec.system_ref);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument(
          "request: unknown system \"" + spec.system_ref +
          "\" (named systems resolve against Table I: M, B, D1..D9; pass an "
          "inline system document otherwise)");
    }
  } else {
    spec.system = core::system_from_json(sys);
    spec.system_ref.clear();
  }
}

/// Assembles the subset of scenario-document sections an optimize/predict
/// request may carry, and parses them with the scenario parser so the two
/// grammars never drift.
engine::ScenarioSpec spec_from_sections(const Json& doc) {
  Json::Object scenario;
  for (const char* key : {"model_options", "failure", "optimizer"}) {
    if (const Json* v = doc.find(key)) scenario[key] = *v;
  }
  engine::ScenarioSpec spec =
      engine::ScenarioSpec::from_json(Json(std::move(scenario)));
  const Json* sys = doc.find("system");
  if (sys == nullptr) {
    throw std::invalid_argument("request: \"system\" is required");
  }
  resolve_system(*sys, spec);
  return spec;
}

Json summary_to_json(const stats::Summary& s) {
  Json::Object doc;
  doc["count"] = Json(static_cast<double>(s.count));
  doc["mean"] = Json(s.mean);
  doc["stddev"] = Json(s.stddev);
  doc["min"] = Json(s.min);
  doc["max"] = Json(s.max);
  return Json(std::move(doc));
}

Json quantiles_to_json(const stats::Quantiles& q) {
  Json::Object doc;
  doc["p05"] = Json(q.p05);
  doc["p25"] = Json(q.p25);
  doc["median"] = Json(q.median);
  doc["p75"] = Json(q.p75);
  doc["p95"] = Json(q.p95);
  return Json(std::move(doc));
}

Json breakdown_to_json(const sim::SimBreakdown& b) {
  Json::Object doc;
  doc["useful"] = Json(b.useful);
  doc["checkpoint_ok"] = Json(b.checkpoint_ok);
  doc["checkpoint_failed"] = Json(b.checkpoint_failed);
  doc["restart_ok"] = Json(b.restart_ok);
  doc["restart_failed"] = Json(b.restart_failed);
  doc["rework_compute"] = Json(b.rework_compute);
  doc["rework_checkpoint"] = Json(b.rework_checkpoint);
  doc["rework_restart"] = Json(b.rework_restart);
  return Json(std::move(doc));
}

Json breakdown_to_json(const core::ModelBreakdown& b) {
  Json::Object doc;
  doc["compute"] = Json(b.compute);
  doc["checkpoint_ok"] = Json(b.checkpoint_ok);
  doc["checkpoint_failed"] = Json(b.checkpoint_failed);
  doc["restart_ok"] = Json(b.restart_ok);
  doc["restart_failed"] = Json(b.restart_failed);
  doc["rework_compute"] = Json(b.rework_compute);
  doc["rework_checkpoint"] = Json(b.rework_checkpoint);
  doc["scratch_rework"] = Json(b.scratch_rework);
  return Json(std::move(doc));
}

}  // namespace

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
    case Op::kOptimize: return "optimize";
    case Op::kPredict: return "predict";
    case Op::kScenario: return "scenario";
  }
  return "unknown";
}

Request Request::parse(const Json& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("request: expected a JSON object");
  }
  const Json* op_member = doc.find("op");
  if (op_member == nullptr) {
    throw std::invalid_argument("request: \"op\" is required");
  }
  Request request;
  request.op = op_from_name(op_member->as_string());
  if (const Json* id = doc.find("id")) request.id = *id;

  switch (request.op) {
    case Op::kPing:
    case Op::kStats:
    case Op::kShutdown:
      require_keys(doc, op_name(request.op), {"op", "id"});
      break;
    case Op::kOptimize:
      require_keys(doc, "optimize",
                   {"op", "id", "system", "model_options", "failure",
                    "optimizer"});
      request.spec = spec_from_sections(doc);
      request.spec.validate();
      break;
    case Op::kPredict: {
      require_keys(doc, "predict",
                   {"op", "id", "system", "model_options", "failure",
                    "optimizer", "plan"});
      request.spec = spec_from_sections(doc);
      request.spec.validate();
      const Json* plan = doc.find("plan");
      if (plan == nullptr) {
        throw std::invalid_argument("request: predict requires \"plan\"");
      }
      request.plan = core::plan_from_json(*plan);
      request.plan.validate(request.spec.system);
      break;
    }
    case Op::kScenario: {
      require_keys(doc, "scenario", {"op", "id", "spec"});
      const Json* spec = doc.find("spec");
      if (spec == nullptr) {
        throw std::invalid_argument("request: scenario requires \"spec\"");
      }
      // The scenario parser resolves string systems through
      // core::load_system (with its file fallback); intercept the member
      // and resolve it with the request's stricter rule instead.
      Json::Object body = spec->as_object();
      Json system;
      if (const auto it = body.find("system"); it != body.end()) {
        system = it->second;
        body.erase(it);
      } else {
        throw std::invalid_argument(
            "request: scenario spec requires \"system\"");
      }
      request.spec = engine::ScenarioSpec::from_json(Json(std::move(body)));
      resolve_system(system, request.spec);
      request.spec.validate();
      break;
    }
  }
  return request;
}

std::string Request::canonical_key() const {
  Json::Object body = spec.to_json().as_object();
  body["system"] = core::to_json(spec.system);
  if (op == Op::kOptimize || op == Op::kPredict) {
    // Scenario-only fields: two optimize requests differing only in
    // simulation controls must share one optimizer run.
    body.erase("model");
    body.erase("trials");
    body.erase("seed");
    body.erase("sim");
  }
  if (op == Op::kPredict) body["plan"] = core::to_json(plan);
  Json::Object doc;
  doc["op"] = Json(op_name(op));
  doc["spec"] = Json(std::move(body));
  return Json(std::move(doc)).dump();
}

util::Json evaluate(const Request& request, util::ThreadPool* pool,
                    obs::MetricsRegistry* registry) {
  switch (request.op) {
    case Op::kOptimize: {
      engine::EvaluationEngine eng = request.spec.make_engine();
      core::OptimizerOptions options = request.spec.optimizer;
      std::optional<engine::ScenarioMetrics> wiring;
      if (registry != nullptr) {
        wiring.emplace(*registry);
        eng.attach_metrics(wiring->engine);
        options.metrics = &wiring->optimizer;
      }
      const core::OptimizationResult best = eng.optimize(options, pool);
      Json::Object result;
      result["plan"] = core::to_json(best.plan);
      result["expected_time"] = Json(best.expected_time);
      result["efficiency"] = Json(best.efficiency);
      return Json(std::move(result));
    }
    case Op::kPredict: {
      engine::EvaluationEngine eng = request.spec.make_engine();
      std::optional<engine::ScenarioMetrics> wiring;
      if (registry != nullptr) {
        wiring.emplace(*registry);
        eng.attach_metrics(wiring->engine);
      }
      const core::Prediction prediction = eng.predict(request.plan);
      Json::Object result;
      result["plan"] = core::to_json(request.plan);
      result["expected_time"] = Json(prediction.expected_time);
      result["efficiency"] = Json(prediction.efficiency);
      result["breakdown"] = breakdown_to_json(prediction.breakdown);
      return Json(std::move(result));
    }
    case Op::kScenario: {
      const engine::ScenarioOutcome outcome =
          engine::run_scenario(request.spec, pool, registry);
      Json::Object result;
      result["selected"] = to_json(outcome.selected);
      result["stats"] = to_json(outcome.stats);
      return Json(std::move(result));
    }
    case Op::kPing:
    case Op::kStats:
    case Op::kShutdown:
      break;
  }
  throw std::logic_error("serve::evaluate called with a non-compute op");
}

std::string ok_response(const Json& id, Json result) {
  Json::Object doc;
  doc["id"] = id;
  doc["ok"] = Json(true);
  doc["result"] = std::move(result);
  return Json(std::move(doc)).dump();
}

std::string error_response(const Json& id, const std::string& code,
                           const std::string& message) {
  Json::Object error;
  error["code"] = Json(code);
  error["message"] = Json(message);
  Json::Object doc;
  doc["id"] = id;
  doc["ok"] = Json(false);
  doc["error"] = Json(std::move(error));
  return Json(std::move(doc)).dump();
}

Json to_json(const sim::TrialStats& stats) {
  Json::Object doc;
  doc["efficiency"] = summary_to_json(stats.efficiency);
  doc["efficiency_quantiles"] = quantiles_to_json(stats.efficiency_quantiles);
  doc["total_time"] = summary_to_json(stats.total_time);
  doc["time_shares"] = breakdown_to_json(stats.time_shares);
  doc["mean_failures"] = Json(stats.mean_failures);
  doc["trials"] = Json(static_cast<double>(stats.trials));
  doc["capped_trials"] = Json(static_cast<double>(stats.capped_trials));
  return Json(std::move(doc));
}

Json to_json(const core::TechniqueResult& result) {
  Json::Object doc;
  doc["technique"] = Json(result.technique);
  doc["plan"] = core::to_json(result.plan);
  doc["predicted_time"] = Json(result.predicted_time);
  doc["predicted_efficiency"] = Json(result.predicted_efficiency);
  return Json(std::move(doc));
}

}  // namespace mlck::serve

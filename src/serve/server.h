#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "serve/plan_cache.h"
#include "serve/request.h"
#include "util/socket.h"
#include "util/thread_pool.h"

namespace mlck::serve {

/// The serve.* metric set (docs/OBSERVABILITY.md). Pointers follow the
/// codebase-wide contract: non-owning, never null inside a running Server
/// (the server wires them to a registry or to privately-owned instances,
/// so the `stats` op always has values to report).
struct ServeMetrics {
  obs::Counter* requests = nullptr;        ///< frames answered (ok or error)
  obs::Counter* errors = nullptr;          ///< error responses sent
  obs::Counter* rejected_queue_full = nullptr;
  obs::Counter* rejected_draining = nullptr;
  obs::Counter* coalesced = nullptr;       ///< waiters joined to a running job
  obs::Counter* jobs_executed = nullptr;   ///< unique jobs run by the executor
  obs::Counter* connections = nullptr;     ///< connections ever accepted
  obs::Gauge* connections_open = nullptr;
  obs::Gauge* queue_depth = nullptr;       ///< live queued-job count
  obs::Gauge* queue_depth_high_water = nullptr;
  obs::Histogram* request_latency_ns = nullptr;  ///< admission to response
  obs::Histogram* job_latency_ns = nullptr;      ///< executor compute time
  PlanCacheMetrics cache;
};

/// Resolves the standard serve.* names against @p registry.
ServeMetrics serve_metrics(obs::MetricsRegistry& registry);

struct ServerOptions {
  std::string socket_path;
  /// Width of the evaluation ThreadPool (the optimizer/simulator's inner
  /// parallelism). 0 selects the hardware concurrency.
  std::size_t threads = 0;
  /// Bound on *queued* unique jobs: a compute request arriving when this
  /// many jobs wait (cache misses, no coalescing partner) is rejected
  /// with a "queue_full" error instead of admitted.
  std::size_t queue_limit = 64;
  std::size_t cache_capacity = 128;
  /// When non-null, the server wires serve.* / pool.* (and the per-job
  /// engine.*, optimizer.*, sim.* scenario names) into this registry; the
  /// registry must outlive the server. Null keeps metrics private to the
  /// `stats` op.
  obs::MetricsRegistry* registry = nullptr;
};

/// mlckd: the multilevel-checkpoint advisory daemon. Accepts connections
/// on a Unix-domain socket, speaks the length-prefixed JSON protocol of
/// serve/protocol.h, and answers the request grammar of serve/request.h.
///
/// Execution model (the shape behind the bit-identity guarantee):
///
///   connection threads (one per client)
///     -> admission: plan-cache lookup, then coalescing by canonical key,
///        then a bounded FIFO job queue
///   one executor thread
///     -> runs each unique job to completion via serve::evaluate on the
///        shared ThreadPool, fulfills every coalesced waiter, and caches
///        the serialized result
///
/// Exactly one thread drives the ThreadPool at a time: parallel_for's
/// submit + wait_idle protocol is whole-pool (a concurrent second driver
/// would wait on the first driver's tasks and steal its exceptions), so
/// request-level concurrency lives in the queue, not on the pool. The
/// pool still runs the optimizer's inner sweep at full width, which is
/// where the actual work is.
///
/// Determinism: a compute result depends only on the request's canonical
/// key — evaluate() is thread-count independent — and cached responses
/// replay the first computation's bytes, so any two identical requests
/// receive byte-identical result payloads, cold or warm, coalesced or
/// not, daemon or direct call.
class Server {
 public:
  /// Binds the socket and starts the accept and executor threads; throws
  /// std::runtime_error when the socket path is unusable.
  explicit Server(const ServerOptions& options);

  /// Calls stop().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& socket_path() const noexcept {
    return listener_.path();
  }

  /// Becomes readable when a client's `shutdown` op asks the daemon to
  /// exit. The owning loop (cmd_serve) polls this next to its signal
  /// pipe and then calls stop(); tests use it to synchronize shutdown.
  int stop_event_fd() const noexcept { return stop_event_.read_fd(); }

  /// Non-blocking graceful-shutdown trigger, safe from any thread
  /// (including connection threads handling a `shutdown` op): new
  /// compute admissions fail with "shutting_down"; queued and in-flight
  /// jobs keep running so no admitted waiter is dropped.
  void request_stop() noexcept;

  /// Full graceful shutdown, idempotent: request_stop(), drain the job
  /// queue (every admitted waiter gets its response), stop accepting,
  /// unblock and join every connection thread, remove the socket file.
  /// Must not be called from a connection thread (it joins them).
  void stop();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Point-in-time server counters (the `stats` op's result document).
  util::Json stats_json() const;

 private:
  /// One admitted compute job awaiting its result. Coalesced duplicates
  /// share the instance; the executor fulfills it exactly once.
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    util::Json result;         ///< valid when ok
    std::string error_code;    ///< valid when !ok
    std::string error_message;
  };

  struct Job {
    std::string key;
    Request request;
    std::shared_ptr<Pending> pending;
  };

  void accept_loop();
  void executor_loop();
  void connection_loop(util::Fd fd, std::size_t index);

  /// Dispatches one parsed frame; returns the serialized response. A
  /// `shutdown` op sets @p stop_after_write instead of poking the stop
  /// event directly: the caller pokes only after the ack frame is on the
  /// wire, so the owning loop's stop() can never cut the connection
  /// before the shutdown client hears back.
  std::string handle_payload(const std::string& payload,
                             bool& stop_after_write);
  std::string handle_compute(Request request);

  static void fulfill(Pending& pending, bool ok, util::Json result,
                      std::string code, std::string message);

  ServerOptions options_;
  util::UnixListener listener_;
  util::ThreadPool pool_;
  PlanCache cache_;
  util::Pipe stop_event_;

  /// Locally-owned metric storage used when no registry is attached.
  struct OwnMetrics;
  std::unique_ptr<OwnMetrics> own_metrics_;
  ServeMetrics metrics_;

  std::atomic<bool> draining_{false};
  std::mutex stop_mutex_;  ///< serializes stop() callers
  bool stopped_ = false;   ///< guarded by stop_mutex_

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  /// Canonical key -> the Pending of the queued or running job for it.
  std::map<std::string, std::shared_ptr<Pending>> inflight_;
  bool executor_exit_ = false;  ///< guarded by queue_mutex_

  std::mutex conn_mutex_;
  std::map<std::size_t, int> open_fds_;  ///< connection index -> raw fd
  std::vector<std::thread> conn_threads_;
  std::size_t next_conn_ = 0;

  std::thread accept_thread_;
  std::thread executor_thread_;
};

}  // namespace mlck::serve

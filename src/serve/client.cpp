#include "serve/client.h"

#include <stdexcept>

#include "serve/protocol.h"

namespace mlck::serve {

Client::Client(const std::string& socket_path)
    : fd_(util::unix_connect(socket_path)), socket_path_(socket_path) {}

std::string Client::call_raw(std::string_view request_text) {
  if (!write_frame(fd_.get(), request_text)) {
    throw std::runtime_error("serve client: write to " + socket_path_ +
                             " failed (daemon gone?)");
  }
  std::string payload;
  const FrameStatus status = read_frame(fd_.get(), payload);
  if (status != FrameStatus::kOk) {
    throw std::runtime_error(std::string("serve client: read from ") +
                             socket_path_ + " failed (" +
                             frame_status_name(status) + ")");
  }
  return payload;
}

util::Json Client::call(const util::Json& request) {
  return util::Json::parse(call_raw(request.dump()));
}

}  // namespace mlck::serve

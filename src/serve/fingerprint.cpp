#include "serve/fingerprint.h"

#include <cstdio>

namespace mlck::serve {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string fingerprint_hex(std::string_view canonical_key) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical_key)));
  return std::string(buffer, 16);
}

}  // namespace mlck::serve

#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace mlck::serve {

/// Optional cache observability (serve.plan_cache.* in
/// docs/OBSERVABILITY.md). Null members are skipped, as everywhere.
struct PlanCacheMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Gauge* size = nullptr;  ///< live entry count
};

/// The multi-tenant plan cache: canonical request key -> the serialized
/// result payload the daemon answered with. Bounded LRU — get() renews
/// an entry, put() evicts the least-recently-used entry once the
/// capacity is reached.
///
/// Values are the exact serialized JSON text of the first computation,
/// so a cache-warm answer is byte-identical to the cache-cold one by
/// construction — the bit-identity contract of docs/SERVING.md costs
/// nothing to maintain.
///
/// Thread-safe: one mutex guards the map and the recency list. The
/// cache sits once per request on the admission path, never inside the
/// optimizer or simulator hot loops, so a mutex is the right tool.
class PlanCache {
 public:
  /// @p capacity == 0 disables caching (every get() misses, put() drops).
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached payload for @p key, renewing its recency; nullopt on
  /// miss. Hit/miss counters move accordingly.
  std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) @p key. Evicts the least-recently-used
  /// entry when the cache is full and @p key is new.
  void put(const std::string& key, std::string value);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Installs the metric set (copied; pointed-to metrics must outlive
  /// the cache). Call before sharing across threads.
  void attach_metrics(const PlanCacheMetrics& metrics) { metrics_ = metrics; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  void update_size_locked() noexcept;

  const std::size_t capacity_;
  PlanCacheMetrics metrics_;
  mutable std::mutex mutex_;
  /// Most-recently-used first.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace mlck::serve

#include "serve/server.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "engine/scenario.h"
#include "serve/protocol.h"

namespace mlck::serve {

namespace {

using util::Json;

/// Best-effort id extraction for error responses on requests that fail
/// Request::parse — the envelope echoes the id whenever the document got
/// far enough to carry one.
Json id_of(const Json& doc) {
  if (doc.is_object()) {
    if (const Json* id = doc.find("id")) return *id;
  }
  return Json();
}

}  // namespace

/// Private metric storage for registry-less servers: the same shape the
/// registry would own, so the wiring code is identical either way.
struct Server::OwnMetrics {
  obs::Counter requests, errors, rejected_queue_full, rejected_draining,
      coalesced, jobs_executed, connections, cache_hits, cache_misses,
      cache_evictions;
  obs::Gauge connections_open, queue_depth, queue_depth_high_water,
      cache_size;
  obs::Histogram request_latency_ns, job_latency_ns;
};

ServeMetrics serve_metrics(obs::MetricsRegistry& registry) {
  ServeMetrics m;
  m.requests = &registry.counter("serve.requests");
  m.errors = &registry.counter("serve.errors");
  m.rejected_queue_full = &registry.counter("serve.rejected_queue_full");
  m.rejected_draining = &registry.counter("serve.rejected_draining");
  m.coalesced = &registry.counter("serve.coalesced");
  m.jobs_executed = &registry.counter("serve.jobs_executed");
  m.connections = &registry.counter("serve.connections");
  m.connections_open = &registry.gauge("serve.connections_open");
  m.queue_depth = &registry.gauge("serve.queue_depth");
  m.queue_depth_high_water =
      &registry.gauge("serve.queue_depth_high_water");
  m.request_latency_ns = &registry.histogram("serve.request_latency_ns");
  m.job_latency_ns = &registry.histogram("serve.job_latency_ns");
  m.cache.hits = &registry.counter("serve.plan_cache.hits");
  m.cache.misses = &registry.counter("serve.plan_cache.misses");
  m.cache.evictions = &registry.counter("serve.plan_cache.evictions");
  m.cache.size = &registry.gauge("serve.plan_cache.size");
  return m;
}

Server::Server(const ServerOptions& options)
    : options_(options),
      listener_(util::UnixListener::bind(options.socket_path)),
      pool_(options.threads),
      cache_(options.cache_capacity) {
  if (options_.registry != nullptr) {
    metrics_ = serve_metrics(*options_.registry);
    pool_.attach_metrics(engine::pool_metrics(*options_.registry));
  } else {
    own_metrics_ = std::make_unique<OwnMetrics>();
    OwnMetrics& own = *own_metrics_;
    metrics_.requests = &own.requests;
    metrics_.errors = &own.errors;
    metrics_.rejected_queue_full = &own.rejected_queue_full;
    metrics_.rejected_draining = &own.rejected_draining;
    metrics_.coalesced = &own.coalesced;
    metrics_.jobs_executed = &own.jobs_executed;
    metrics_.connections = &own.connections;
    metrics_.connections_open = &own.connections_open;
    metrics_.queue_depth = &own.queue_depth;
    metrics_.queue_depth_high_water = &own.queue_depth_high_water;
    metrics_.request_latency_ns = &own.request_latency_ns;
    metrics_.job_latency_ns = &own.job_latency_ns;
    metrics_.cache.hits = &own.cache_hits;
    metrics_.cache.misses = &own.cache_misses;
    metrics_.cache.evictions = &own.cache_evictions;
    metrics_.cache.size = &own.cache_size;
  }
  cache_.attach_metrics(metrics_.cache);
  executor_thread_ = std::thread([this] { executor_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::request_stop() noexcept {
  draining_.store(true, std::memory_order_relaxed);
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;

  request_stop();
  {
    // The executor drains the queue before exiting, so every admitted
    // waiter is fulfilled — shutdown never drops a response.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    executor_exit_ = true;
  }
  queue_cv_.notify_all();
  if (executor_thread_.joinable()) executor_thread_.join();

  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  {
    // shutdown(2), not close: the connection threads own their fds, and
    // a shutdown wakes their blocking reads without a lifetime race.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& [index, fd] : open_fds_) {
      (void)index;
      util::Fd borrowed(fd);
      borrowed.shutdown_both();
      borrowed.release();
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
}

void Server::accept_loop() {
  while (true) {
    util::Fd fd = listener_.accept();
    if (!fd.valid()) return;  // listener shut down
    metrics_.connections->add();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    const std::size_t index = next_conn_++;
    open_fds_[index] = fd.get();
    metrics_.connections_open->set(static_cast<double>(open_fds_.size()));
    conn_threads_.emplace_back(
        [this, index](util::Fd conn) { connection_loop(std::move(conn), index); },
        std::move(fd));
  }
}

void Server::connection_loop(util::Fd fd, std::size_t index) {
  std::string payload;
  while (true) {
    const FrameStatus status = read_frame(fd.get(), payload);
    if (status == FrameStatus::kClosed || status == FrameStatus::kTruncated ||
        status == FrameStatus::kError) {
      break;  // peer gone or stream broken: close cleanly, nothing to say
    }
    std::string response;
    if (status == FrameStatus::kEmpty) {
      // Zero-length frame: invalid, but the stream is still in sync.
      metrics_.requests->add();
      metrics_.errors->add();
      response = error_response(Json(), "bad_frame",
                                "zero-length frame (a request is one "
                                "non-empty JSON object per frame)");
      if (!write_frame(fd.get(), response)) break;
      continue;
    }
    if (status == FrameStatus::kOversized) {
      // The declared length exceeds the frame bound; the stream position
      // is unknowable from here, so answer and drop the connection.
      metrics_.requests->add();
      metrics_.errors->add();
      response =
          error_response(Json(), "bad_frame",
                         "frame exceeds the " +
                             std::to_string(kMaxFrameBytes) +
                             "-byte bound; closing the connection");
      (void)write_frame(fd.get(), response);
      break;
    }
    bool stop_after_write = false;
    {
      obs::ScopedTimer timer(metrics_.request_latency_ns);
      response = handle_payload(payload, stop_after_write);
    }
    metrics_.requests->add();
    const bool wrote = write_frame(fd.get(), response);
    if (stop_after_write) {
      // Poke only once the ack frame is on the wire (or the peer is
      // already gone): the owning loop reacts by calling stop(), which
      // shuts connection fds down — doing that before the write would
      // race the shutdown client out of its own response.
      stop_event_.poke();
    }
    if (!wrote) break;
  }
  {
    // Unregister before the descriptor dies so stop() never shuts down a
    // recycled fd number.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    open_fds_.erase(index);
    metrics_.connections_open->set(static_cast<double>(open_fds_.size()));
  }
}

std::string Server::handle_payload(const std::string& payload,
                                   bool& stop_after_write) {
  Json doc;
  try {
    doc = Json::parse(payload);
  } catch (const util::JsonError& e) {
    metrics_.errors->add();
    return error_response(Json(), "bad_json", e.what());
  }
  Request request;
  try {
    request = Request::parse(doc);
  } catch (const std::exception& e) {
    metrics_.errors->add();
    return error_response(id_of(doc), "bad_request", e.what());
  }
  switch (request.op) {
    case Op::kPing: {
      Json::Object result;
      result["pong"] = Json(true);
      return ok_response(request.id, Json(std::move(result)));
    }
    case Op::kStats:
      return ok_response(request.id, stats_json());
    case Op::kShutdown: {
      request_stop();  // reject new admissions immediately
      stop_after_write = true;
      Json::Object result;
      result["stopping"] = Json(true);
      return ok_response(request.id, Json(std::move(result)));
    }
    case Op::kOptimize:
    case Op::kPredict:
    case Op::kScenario:
      return handle_compute(std::move(request));
  }
  metrics_.errors->add();
  return error_response(id_of(doc), "internal", "unhandled op");
}

std::string Server::handle_compute(Request request) {
  const std::string key = request.canonical_key();
  const Json id = request.id;  // for the envelope; results are id-independent

  // Cache hits bypass admission entirely: a warm request succeeds even
  // while draining, and replays the first computation's bytes.
  if (const auto cached = cache_.get(key)) {
    return ok_response(id, Json::parse(*cached));
  }

  std::shared_ptr<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      // A queued or running job already computes this key: join it.
      pending = it->second;
      metrics_.coalesced->add();
    } else if (const auto cached = cache_.get(key)) {
      // Second chance under the queue lock: the executor caches a result
      // *before* retiring its key, so a request that missed the first
      // lookup while the job was finishing finds the answer here instead
      // of enqueueing a duplicate run.
      return ok_response(id, Json::parse(*cached));
    } else {
      if (draining_.load(std::memory_order_relaxed)) {
        metrics_.rejected_draining->add();
        metrics_.errors->add();
        return error_response(request.id, "shutting_down",
                              "the daemon is draining and admits no new "
                              "work");
      }
      if (queue_.size() >= options_.queue_limit) {
        metrics_.rejected_queue_full->add();
        metrics_.errors->add();
        return error_response(
            request.id, "queue_full",
            "admission queue is at its " +
                std::to_string(options_.queue_limit) + "-job bound");
      }
      pending = std::make_shared<Pending>();
      inflight_[key] = pending;
      queue_.push_back(Job{key, std::move(request), pending});
      metrics_.queue_depth->set(static_cast<double>(queue_.size()));
      metrics_.queue_depth_high_water->set_max(
          static_cast<double>(queue_.size()));
      queue_cv_.notify_one();
    }
  }

  std::unique_lock<std::mutex> wait_lock(pending->mutex);
  pending->cv.wait(wait_lock, [&pending] { return pending->done; });
  if (pending->ok) return ok_response(id, pending->result);
  metrics_.errors->add();
  return error_response(id, pending->error_code, pending->error_message);
}

void Server::executor_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return executor_exit_ || !queue_.empty(); });
      if (queue_.empty()) return;  // executor_exit_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      metrics_.queue_depth->set(static_cast<double>(queue_.size()));
    }

    bool ok = true;
    Json result;
    std::string code, message;
    try {
      obs::ScopedTimer timer(metrics_.job_latency_ns);
      result = evaluate(job.request, &pool_, options_.registry);
    } catch (const std::invalid_argument& e) {
      ok = false;
      code = "bad_request";
      message = e.what();
    } catch (const std::exception& e) {
      ok = false;
      code = "internal";
      message = e.what();
    }
    metrics_.jobs_executed->add();

    if (ok) cache_.put(job.key, result.dump());
    {
      // Retire the key before fulfilling: an arrival after this point
      // starts fresh (and finds the cache populated on the ok path).
      std::lock_guard<std::mutex> lock(queue_mutex_);
      inflight_.erase(job.key);
    }
    fulfill(*job.pending, ok, std::move(result), std::move(code),
            std::move(message));
  }
}

void Server::fulfill(Pending& pending, bool ok, Json result, std::string code,
                     std::string message) {
  {
    std::lock_guard<std::mutex> lock(pending.mutex);
    pending.done = true;
    pending.ok = ok;
    pending.result = std::move(result);
    pending.error_code = std::move(code);
    pending.error_message = std::move(message);
  }
  pending.cv.notify_all();
}

util::Json Server::stats_json() const {
  Json::Object cache;
  cache["hits"] =
      Json(static_cast<double>(metrics_.cache.hits->value()));
  cache["misses"] =
      Json(static_cast<double>(metrics_.cache.misses->value()));
  cache["evictions"] =
      Json(static_cast<double>(metrics_.cache.evictions->value()));
  cache["size"] = Json(static_cast<double>(cache_.size()));
  cache["capacity"] = Json(static_cast<double>(cache_.capacity()));

  Json::Object doc;
  doc["requests"] = Json(static_cast<double>(metrics_.requests->value()));
  doc["errors"] = Json(static_cast<double>(metrics_.errors->value()));
  doc["rejected_queue_full"] =
      Json(static_cast<double>(metrics_.rejected_queue_full->value()));
  doc["rejected_draining"] =
      Json(static_cast<double>(metrics_.rejected_draining->value()));
  doc["coalesced"] = Json(static_cast<double>(metrics_.coalesced->value()));
  doc["jobs_executed"] =
      Json(static_cast<double>(metrics_.jobs_executed->value()));
  doc["connections"] =
      Json(static_cast<double>(metrics_.connections->value()));
  doc["connections_open"] = Json(metrics_.connections_open->value());
  doc["queue_depth"] = Json(metrics_.queue_depth->value());
  doc["plan_cache"] = Json(std::move(cache));
  doc["draining"] = Json(draining_.load(std::memory_order_relaxed));
  doc["pool_threads"] = Json(static_cast<double>(pool_.size()));
  return Json(std::move(doc));
}

}  // namespace mlck::serve

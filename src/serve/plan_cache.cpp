#include "serve/plan_cache.h"

#include <utility>

namespace mlck::serve {

std::optional<std::string> PlanCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    if (metrics_.misses != nullptr) metrics_.misses->add();
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  if (metrics_.hits != nullptr) metrics_.hits->add();
  return it->second->value;
}

void PlanCache::put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    if (metrics_.evictions != nullptr) metrics_.evictions->add();
  }
  entries_.push_front(Entry{key, std::move(value)});
  index_[key] = entries_.begin();
  update_size_locked();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void PlanCache::update_size_locked() noexcept {
  if (metrics_.size != nullptr) {
    metrics_.size->set(static_cast<double>(entries_.size()));
  }
}

}  // namespace mlck::serve

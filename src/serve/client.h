#pragma once

#include <string>
#include <string_view>

#include "util/json.h"
#include "util/socket.h"

namespace mlck::serve {

/// Blocking thin client for the advisory daemon: one connection, one
/// frame out, one frame in. This is all `mlck --connect` and the bench
/// drivers need — the protocol has no pipelining, and concurrency comes
/// from running many clients.
class Client {
 public:
  /// Connects; throws std::runtime_error naming the socket path when no
  /// daemon listens there.
  explicit Client(const std::string& socket_path);

  /// Sends @p request_text as one frame and returns the response frame's
  /// exact bytes (the unit the bit-identity contract is stated in).
  /// Throws std::runtime_error on I/O failure or connection loss.
  std::string call_raw(std::string_view request_text);

  /// JSON convenience over call_raw (compact dump on the way out).
  util::Json call(const util::Json& request);

  int fd() const noexcept { return fd_.get(); }

 private:
  util::Fd fd_;
  std::string socket_path_;
};

}  // namespace mlck::serve

#pragma once

#include <string>

#include "core/plan.h"
#include "engine/scenario.h"
#include "obs/registry.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace mlck::serve {

/// The advisory service's request grammar (docs/SERVING.md). A request is
/// one JSON object per frame:
///
///   {"op": "optimize" | "predict" | "scenario" | "ping" | "stats" |
///          "shutdown",
///    "id": <any JSON value, echoed verbatim>,          // optional
///    "system": "D3" | {inline system document},        // compute ops
///    "model_options": {...}, "failure": {...},         // optional
///    "optimizer": {...},                               // optional
///    "plan": {...},                                    // predict only
///    "spec": {full scenario document}}                 // scenario only
///
/// optimize/predict run the Dauwe model through the cached
/// EvaluationEngine — the bit-identity contract is defined against that
/// direct path. scenario wraps engine::run_scenario (any registered
/// model; deterministic by seed and independent of thread count).
///
/// Named systems resolve through systems::table1_system ONLY — never
/// through core::load_system, whose file-path fallback would let a remote
/// peer read server-side paths.
enum class Op {
  kPing,      ///< liveness probe; result {"pong": true}
  kStats,     ///< server counters snapshot (not cached; non-deterministic)
  kShutdown,  ///< ask the daemon to drain and exit
  kOptimize,  ///< interval search -> {plan, expected_time, efficiency}
  kPredict,   ///< forecast one plan -> {expected_time, efficiency, breakdown}
  kScenario,  ///< select + simulate -> {selected, stats}
};

const char* op_name(Op op) noexcept;

/// One parsed, fully-resolved request. The spec always carries a resolved
/// system; trials/seed/sim matter for scenario only.
struct Request {
  Op op = Op::kPing;
  util::Json id;  ///< echoed verbatim in the response; null when absent
  engine::ScenarioSpec spec;
  core::CheckpointPlan plan;  ///< predict only

  /// True for the ops that run model/simulator work (and are therefore
  /// admitted, coalesced, and cached); false for control ops.
  bool is_compute() const noexcept {
    return op == Op::kOptimize || op == Op::kPredict || op == Op::kScenario;
  }

  /// Strict parse; throws std::invalid_argument / std::out_of_range /
  /// util::JsonError with a deterministic message on any violation
  /// (unknown op, unknown key, missing system, unresolvable system name,
  /// malformed section). The caller maps these to a "bad_request" error
  /// response.
  static Request parse(const util::Json& doc);

  /// The canonical fingerprint text this request coalesces and caches
  /// under: a compact dump of {"op", "spec"} with the system always
  /// inlined (so "D3" and its inline document share a key) and, for
  /// optimize/predict, the scenario-only fields (model, trials, seed,
  /// sim) dropped. util::Json objects are sorted maps, so two requests
  /// that differ only in member order produce identical keys.
  std::string canonical_key() const;
};

/// Runs one compute request and returns its deterministic result
/// document. This is the single evaluation path shared by the daemon
/// executor, the thin CLI client's local fallback, and the contract
/// tests — byte-identity between "direct call" and "daemon round-trip"
/// is identity of this function with itself.
///
/// The result contains only run-invariant fields: the optimizer's
/// evaluation counts, for instance, vary run to run under pool+prune
/// while the winning plan does not, so they are deliberately excluded
/// (observable through the daemon's metrics instead).
///
/// @p registry, when non-null, wires the run under the standard
/// engine.* / optimizer.* / sim.* names — observe-only, results are
/// bit-identical either way. Throws std::invalid_argument for requests
/// whose resolved spec fails validation (e.g. a predict plan that does
/// not fit the system).
util::Json evaluate(const Request& request, util::ThreadPool* pool = nullptr,
                    obs::MetricsRegistry* registry = nullptr);

/// Serialized response envelopes (compact dump — the exact bytes that go
/// on the wire and into the plan cache).
std::string ok_response(const util::Json& id, util::Json result);
std::string error_response(const util::Json& id, const std::string& code,
                           const std::string& message);

/// Serialization helpers shared with the bench/e2e drivers.
util::Json to_json(const sim::TrialStats& stats);
util::Json to_json(const core::TechniqueResult& result);

}  // namespace mlck::serve

#include "util/socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mlck::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " +
                           std::strerror(errno));
}

/// Fills a sockaddr_un; sun_path is a fixed 108-byte array, so long
/// paths are a hard error rather than a silent truncation.
sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path empty or too long (max " +
                             std::to_string(sizeof(address.sun_path) - 1) +
                             " bytes): " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

void Fd::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

long read_exact(int fd, void* buffer, std::size_t size) noexcept {
  std::size_t done = 0;
  char* out = static_cast<char*>(buffer);
  while (done < size) {
    const ssize_t n = ::read(fd, out + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return static_cast<long>(done);  // peer closed
    if (errno == EINTR) continue;
    return -1;
  }
  return static_cast<long>(done);
}

bool write_all(int fd, const void* buffer, std::size_t size) noexcept {
  std::size_t done = 0;
  const char* in = static_cast<const char*>(buffer);
  // send(2) for the MSG_NOSIGNAL guarantee on sockets; plain write(2)
  // for everything else (pipes in the tests, ENOTSOCK on first call).
  bool use_send = true;
  while (done < size) {
    const ssize_t n = use_send
                          ? ::send(fd, in + done, size - done, MSG_NOSIGNAL)
                          : ::write(fd, in + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno == ENOTSOCK && use_send) {
      use_send = false;
      continue;
    }
    return false;
  }
  return true;
}

bool wait_readable(int fd, int timeout_ms) noexcept {
  pollfd entry{};
  entry.fd = fd;
  entry.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&entry, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;  // timeout
    if (errno == EINTR) continue;
    return false;
  }
}

int wait_either_readable(int fd_a, int fd_b) noexcept {
  pollfd entries[2] = {};
  entries[0].fd = fd_a;
  entries[0].events = POLLIN;
  entries[1].fd = fd_b;
  entries[1].events = POLLIN;
  for (;;) {
    const int rc = ::poll(entries, 2, -1);
    if (rc > 0) {
      // POLLHUP/POLLERR count as readable: the waiter must wake up and
      // observe the condition rather than spin here.
      if (entries[0].revents != 0) return fd_a;
      if (entries[1].revents != 0) return fd_b;
      continue;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

UnixListener UnixListener::bind(const std::string& path, int backlog) {
  const sockaddr_un address = make_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket() for", path);
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nothing is listening; remove it first.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    fail("bind() to", path);
  }
  if (::listen(fd.get(), backlog) != 0) fail("listen() on", path);
  return UnixListener(std::move(fd), path);
}

UnixListener::~UnixListener() {
  if (!path_.empty() && fd_.valid()) ::unlink(path_.c_str());
}

Fd UnixListener::accept() const noexcept {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    return Fd();
  }
}

Fd unix_connect(const std::string& path) {
  const sockaddr_un address = make_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket() for", path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    fail("connect() to", path);
  }
  return fd;
}

Pipe::Pipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("pipe(): ") +
                             std::strerror(errno));
  }
  read_ = Fd(fds[0]);
  write_ = Fd(fds[1]);
}

void Pipe::poke() noexcept {
  const char byte = 1;
  // Best-effort and async-signal-safe: a full pipe already means the
  // reader has a wake-up pending, so a failed write loses nothing.
  [[maybe_unused]] const ssize_t rc = ::write(write_.get(), &byte, 1);
}

void Pipe::drain() noexcept {
  char buffer[64];
  while (wait_readable(read_.get(), 0)) {
    const ssize_t n = ::read(read_.get(), buffer, sizeof(buffer));
    if (n <= 0) break;
  }
}

}  // namespace mlck::util

#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mlck::util {

/// Error with position information raised by Json::parse and by typed
/// accessors on mismatching values.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Minimal JSON document model used for system/plan configuration files
/// and machine-readable experiment output.
///
/// Scope: full JSON syntax (RFC 8259) with doubles for all numbers and
/// BMP \uXXXX escapes decoded to UTF-8. Objects keep keys sorted
/// (std::map), so dump() is deterministic — convenient for golden tests
/// and diffable experiment artifacts.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : type_(Type::kNumber), number_(value) {}
  Json(long long value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError naming the expected type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Mutable containers (create the container type on a null value).
  Array& make_array();
  Object& make_object();

  /// Object member access. at() throws JsonError naming the missing key;
  /// find() returns nullptr.
  const Json& at(const std::string& key) const;
  const Json* find(const std::string& key) const;

  /// Array element access with bounds checking.
  const Json& at(std::size_t index) const;

  /// Elements in an array / members in an object; 0 otherwise.
  std::size_t size() const noexcept;

  /// Parses a complete JSON document; trailing non-whitespace is an
  /// error. Throws JsonError with 1-based line:column on bad input.
  static Json parse(std::string_view text);

  /// Serializes. indent == 0 emits compact one-line JSON; indent > 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mlck::util

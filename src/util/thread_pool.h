#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlck::util {

/// Optional instrumentation for a ThreadPool. Null members are skipped;
/// attach_metrics() installs the set before work is submitted.
struct ThreadPoolMetrics {
  obs::Counter* tasks_run = nullptr;  ///< tasks executed to completion
  /// Deepest queue ever observed at submit time (high-water mark).
  obs::Gauge* queue_depth_high_water = nullptr;
  obs::Histogram* task_latency_ns = nullptr;  ///< per-task wall time, ns
};

/// Fixed-size worker pool executing void() tasks.
///
/// Exception safety: a task that throws does not take the process down.
/// The first exception is captured; the pool keeps draining the remaining
/// tasks (so deterministic fan-outs still produce every other slot) and
/// the captured exception is rethrown from the next wait_idle() call,
/// after which the pool is reusable. Exceptions raised by tasks that are
/// never waited on are dropped when the pool is destroyed.
///
/// Completion is observed either through wait_idle() or through state the
/// task itself publishes. Higher-level helpers (parallel_for) build
/// deterministic, data-race-free patterns on top.
class ThreadPool {
 public:
  /// Creates @p num_threads workers. Zero selects the hardware concurrency
  /// (at least one).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task for execution. Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. If any task
  /// threw since the previous wait_idle(), rethrows the first such
  /// exception (and clears it, leaving the pool usable).
  void wait_idle();

  /// Installs the metric set. Call before submitting work; the pool
  /// copies the pointers, which must outlive it.
  void attach_metrics(const ThreadPoolMetrics& metrics);

  /// Attaches a span sink: each executed task is recorded as a
  /// "pool.task" span on its worker's track, and workers claim
  /// "pool worker N" track names. Null detaches. Same contract as
  /// attach_metrics: observe-only, call before submitting work, the sink
  /// must outlive the pool.
  void attach_trace(obs::TraceSink* sink);

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop(std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_exception_;  ///< guarded by mutex_
  ThreadPoolMetrics metrics_;           ///< written under mutex_
  obs::TraceSink* trace_ = nullptr;     ///< written under mutex_
  std::vector<std::thread> workers_;
};

}  // namespace mlck::util

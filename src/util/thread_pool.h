#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlck::util {

/// Fixed-size worker pool executing void() tasks.
///
/// The pool is deliberately minimal: tasks may not throw (exceptions
/// escaping a task terminate, per CP rules on unhandled thread exceptions),
/// and completion is observed either through wait_idle() or through state
/// the task itself publishes. Higher-level helpers (parallel_for) build
/// deterministic, data-race-free patterns on top.
class ThreadPool {
 public:
  /// Creates @p num_threads workers. Zero selects the hardware concurrency
  /// (at least one).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task for execution. Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void wait_idle();

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mlck::util

#pragma once

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace mlck::util {

/// Executes body(i) for every i in [0, count), distributing contiguous
/// chunks over the pool's workers and blocking until all complete.
///
/// With pool == nullptr, or a pool of one worker, execution is sequential
/// in index order; results must therefore not depend on execution order
/// (each index writes only its own slot of any shared output). The chunked
/// schedule is deterministic for a fixed pool size.
///
/// A body that throws is propagated to the caller on every path: directly
/// on the sequential path, and rethrown from the pool's wait_idle() on the
/// parallel path (remaining chunks still run, so untouched slots are
/// still filled; the pool stays usable).
void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace mlck::util

#pragma once

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace mlck::util {

/// Executes body(i) for every i in [0, count), distributing contiguous
/// chunks over the pool's workers and blocking until all complete.
///
/// With pool == nullptr, or a pool of one worker, execution is sequential
/// in index order; results must therefore not depend on execution order
/// (each index writes only its own slot of any shared output). The chunked
/// schedule is deterministic for a fixed pool size.
///
/// A body that throws is propagated to the caller on every path: directly
/// on the sequential path, and rethrown from the pool's wait_idle() on the
/// parallel path (remaining chunks still run, so untouched slots are
/// still filled; the pool stays usable).
void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Chunk-granular variant: body(begin, end) is invoked once per
/// contiguous chunk of [0, count), so the body can hoist per-chunk state
/// (scratch buffers, reusable failure sources, options copies) out of the
/// per-index loop — the point of the simulator's batch engine. Chunks
/// never overlap and cover [0, count) exactly; on the sequential path the
/// whole range is one chunk. Chunk boundaries depend on the pool size, so
/// per-index results must not depend on which chunk an index lands in
/// (per-chunk state must be observationally equivalent to per-index
/// state). Exceptions propagate as in parallel_for.
void parallel_for_chunks(
    ThreadPool* pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace mlck::util

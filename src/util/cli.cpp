#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace mlck::util {

Cli::Cli(int argc, const char* const* argv) {
  raw_.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) raw_.emplace_back(argv[i]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        // "--key value": attach the next token as the value unless it is
        // itself an option, so "--cases 200" means "--cases=200".
        if (i + 1 < argc &&
            std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
          options_.emplace(std::string(arg.substr(2)), argv[++i]);
        } else {
          options_.emplace(std::string(arg.substr(2)), "");
        }
      } else {
        options_.emplace(std::string(arg.substr(2, eq - 2)),
                         std::string(arg.substr(eq + 1)));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Cli::has(const std::string& name) const {
  seen_[name] = true;
  return options_.count(name) != 0;
}

std::optional<std::string> Cli::value(const std::string& name) const {
  seen_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

int Cli::get_int(const std::string& name, int fallback) const {
  const auto v = value(name);
  return v && !v->empty() ? std::atoi(v->c_str()) : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = value(name);
  return v && !v->empty() ? std::atof(v->c_str()) : fallback;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const auto v = value(name);
  return v ? *v : fallback;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  return false;
}

std::vector<std::string> Cli::unrecognized() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : options_) {
    if (!seen_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace mlck::util

#include "util/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mlck::util {

namespace {

[[noreturn]] void type_error(const char* expected, Json::Type actual) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw JsonError(std::string("json: expected ") + expected + ", got " +
                  names[static_cast<int>(actual)]);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Json::Array& Json::make_array() {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Json::Object& Json::make_object() {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) throw JsonError("json: missing key \"" + key + "\"");
  return *found;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (index >= array_.size()) {
    throw JsonError("json: index " + std::to_string(index) +
                    " out of range (size " + std::to_string(array_.size()) +
                    ")");
  }
  return array_[index];
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

// ------------------------------------------------------------------ parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("json parse error at " + std::to_string(line) + ":" +
                    std::to_string(column) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    Json out;
    if (c == '{') out = parse_object();
    else if (c == '[') out = parse_array();
    else if (c == '"') out = Json(parse_string());
    else if (c == 't' || c == 'f') out = parse_bool();
    else if (c == 'n') out = parse_null();
    else out = parse_number();
    --depth_;
    return out;
  }

  Json parse_null() {
    if (!consume_literal("null")) fail("invalid literal");
    return Json();
  }

  Json parse_bool() {
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    fail("invalid literal");
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: --pos_; fail("invalid escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else { --pos_; fail("invalid \\u escape"); }
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs unsupported —
    // configuration files have no business containing astral characters).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_array() {
    expect('[');
    Json::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') return Json(std::move(items));
      if (c != ',') { --pos_; fail("expected ',' or ']'"); }
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = take();
      if (c == '}') return Json(std::move(members));
      if (c != ',') { --pos_; fail("expected ',' or '}'"); }
    }
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    // Integral values print without a fraction ("200", not "200.0").
    out += std::to_string(static_cast<long long>(value));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

Json Json::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * level), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(out, number_); break;
    case Type::kString: dump_string(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ",";
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ",";
        first = false;
        newline(depth + 1);
        dump_string(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace mlck::util

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlck::util {

/// Column-aligned ASCII table used by the experiment drivers to print the
/// rows/series of each paper table and figure.
///
/// Cells are strings; numeric helpers format with a fixed precision so
/// columns line up. Alignment is right for cells that parse as numbers and
/// left otherwise.
class Table {
 public:
  /// Sets the header row. Column count is fixed by this call.
  explicit Table(std::vector<std::string> header);

  /// Appends a data row. @pre cells.size() == column count
  void add_row(std::vector<std::string> cells);

  /// Formats @p value with @p precision fraction digits.
  static std::string num(double value, int precision = 3);

  /// Formats a percentage ("12.3%") from a fraction in [0, 1].
  static std::string pct(double fraction, int precision = 1);

  /// Renders the table with a separator line under the header.
  void print(std::ostream& os) const;

  /// Renders to a string (convenience for tests).
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlck::util

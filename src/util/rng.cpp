#include "util/rng.h"

namespace mlck::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream) noexcept {
  // Mix the stream index through two SplitMix64 rounds keyed by the base
  // seed; a plain xor/add would make adjacent trials correlated.
  std::uint64_t s = base_seed ^ (0x6a09e667f3bcc909ULL + stream);
  std::uint64_t out = splitmix64(s);
  out ^= splitmix64(s);
  return out;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

}  // namespace mlck::util

#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace mlck::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream) noexcept {
  // Mix the stream index through two SplitMix64 rounds keyed by the base
  // seed; a plain xor/add would make adjacent trials correlated.
  std::uint64_t s = base_seed ^ (0x6a09e667f3bcc909ULL + stream);
  std::uint64_t out = splitmix64(s);
  out ^= splitmix64(s);
  return out;
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_pos() noexcept {
  // (u + 1) / 2^53 lies in (0, 1]; avoids log(0) downstream.
  return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  return -std::log(uniform_pos()) / rate;
}

std::size_t Rng::discrete_from_cdf(std::span<const double> cdf) noexcept {
  assert(!cdf.empty());
  const double u = uniform();
  for (std::size_t i = 0; i + 1 < cdf.size(); ++i) {
    if (u <= cdf[i]) return i;
  }
  return cdf.size() - 1;
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

}  // namespace mlck::util

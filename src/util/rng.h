#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>

namespace mlck::util {

/// SplitMix64 step: advances @p state and returns the next 64-bit output.
///
/// Used both as a stand-alone mixer for deriving independent stream seeds
/// (hashing a base seed with a stream index) and to expand a single seed
/// into the four words of xoshiro256++ state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Combines a base seed with a stream index into a well-mixed seed.
///
/// Distinct (seed, stream) pairs yield statistically independent generator
/// states, which is how Monte-Carlo trials get reproducible independent
/// randomness when executed in parallel.
std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream) noexcept;

/// xoshiro256++ pseudo-random generator.
///
/// Small, fast, and passes BigCrush; chosen over std::mt19937_64 for the
/// cheap per-trial construction cost (4 words of state, seeded via
/// SplitMix64) required by the trial runner. Not cryptographically secure.
///
/// The sampling methods are defined inline: the simulator's batch engine
/// draws inside a tight per-segment loop, and an out-of-line call per
/// uniform would dominate the draw itself.
class Rng {
 public:
  /// Seeds the generator. Any seed (including 0) is valid; the state is
  /// expanded through SplitMix64 so close seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0, so it is safe to pass
  /// through std::log when sampling exponentials.
  double uniform_pos() noexcept {
    // (u + 1) / 2^53 lies in (0, 1]; avoids log(0) downstream.
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Exponentially distributed sample with the given rate (mean 1/rate).
  /// Consumes exactly one uniform. @pre rate > 0
  double exponential(double rate) noexcept {
    assert(rate > 0.0);
    return -std::log(uniform_pos()) / rate;
  }

  /// Samples an index from a discrete distribution given by cumulative
  /// probabilities @p cdf (non-decreasing, cdf.back() ~= 1). Returns the
  /// smallest index i with u <= cdf[i]. Consumes exactly one uniform.
  ///
  /// The final entry is never compared: a uniform draw that exceeds every
  /// earlier entry lands in the last bucket regardless of whether the
  /// accumulated cdf falls short of 1.0 in the last place (see
  /// sim::severity_cdf, which nevertheless pins cdf.back() to exactly 1.0
  /// so serialized tables read back unambiguously).
  std::size_t discrete_from_cdf(std::span<const double> cdf) noexcept {
    assert(!cdf.empty());
    const double u = uniform();
    for (std::size_t i = 0; i + 1 < cdf.size(); ++i) {
      if (u <= cdf[i]) return i;
    }
    return cdf.size() - 1;
  }

  /// Uniform integer in [0, n). @pre n > 0
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace mlck::util

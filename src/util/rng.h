#pragma once

#include <cstdint>
#include <span>

namespace mlck::util {

/// SplitMix64 step: advances @p state and returns the next 64-bit output.
///
/// Used both as a stand-alone mixer for deriving independent stream seeds
/// (hashing a base seed with a stream index) and to expand a single seed
/// into the four words of xoshiro256++ state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Combines a base seed with a stream index into a well-mixed seed.
///
/// Distinct (seed, stream) pairs yield statistically independent generator
/// states, which is how Monte-Carlo trials get reproducible independent
/// randomness when executed in parallel.
std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                 std::uint64_t stream) noexcept;

/// xoshiro256++ pseudo-random generator.
///
/// Small, fast, and passes BigCrush; chosen over std::mt19937_64 for the
/// cheap per-trial construction cost (4 words of state, seeded via
/// SplitMix64) required by the trial runner. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator. Any seed (including 0) is valid; the state is
  /// expanded through SplitMix64 so close seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in (0, 1]; never returns 0, so it is safe to pass
  /// through std::log when sampling exponentials.
  double uniform_pos() noexcept;

  /// Exponentially distributed sample with the given rate (mean 1/rate).
  /// @pre rate > 0
  double exponential(double rate) noexcept;

  /// Samples an index from a discrete distribution given by cumulative
  /// probabilities @p cdf (non-decreasing, cdf.back() ~= 1). Returns the
  /// smallest index i with u <= cdf[i].
  std::size_t discrete_from_cdf(std::span<const double> cdf) noexcept;

  /// Uniform integer in [0, n). @pre n > 0
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace mlck::util

#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <ostream>
#include <sstream>
#include <utility>

namespace mlck::util {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  double parsed = 0.0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  // Allow a trailing '%' so percentage cells right-align too.
  if (cell.back() == '%') --end;
  auto [ptr, ec] = std::from_chars(begin, end, parsed);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = width[c] - row[c].size();
      const bool right = looks_numeric(row[c]);
      if (c != 0) os << "  ";
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w;
  total += 2 * (width.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace mlck::util

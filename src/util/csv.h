#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlck::util {

/// Minimal CSV writer (RFC-4180 quoting) used to export experiment series
/// alongside the human-readable tables.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; cells containing commas, quotes, or newlines are
  /// quoted and embedded quotes doubled.
  void row(const std::vector<std::string>& cells);

  /// Escapes a single cell per RFC 4180.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace mlck::util

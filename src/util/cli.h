#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mlck::util {

/// Tiny "--key=value" / "--key value" / "--flag" argument parser for the
/// experiment drivers and examples. A bare "--key" takes the following
/// token as its value unless that token is itself an option.
///
/// Unknown keys are collected and reported so a typo in a sweep parameter
/// fails loudly instead of silently running the default configuration.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if "--name" or "--name=..." was passed.
  bool has(const std::string& name) const;

  /// Value of "--name=value" if present.
  std::optional<std::string> value(const std::string& name) const;

  /// Typed getters with defaults.
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non "--") arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// The original argv tokens, including argv[0], verbatim — for
  /// stamping provenance into artifact `meta` sections.
  const std::vector<std::string>& raw_args() const { return raw_; }

  /// Marks a key as recognized; unrecognized() lists the rest.
  std::vector<std::string> unrecognized() const;

 private:
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> seen_;
  std::vector<std::string> positional_;
  std::vector<std::string> raw_;
};

}  // namespace mlck::util

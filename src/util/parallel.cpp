#include "util/parallel.h"

#include <algorithm>

namespace mlck::util {

void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Four chunks per worker balances load without per-index queue traffic.
  const std::size_t target_chunks = pool->size() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, count / target_chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool->submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool->wait_idle();
}

}  // namespace mlck::util

#include "util/parallel.h"

#include <algorithm>

namespace mlck::util {

void parallel_for_chunks(
    ThreadPool* pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->size() <= 1) {
    body(0, count);
    return;
  }
  // Four chunks per worker balances load without per-index queue traffic.
  const std::size_t target_chunks = pool->size() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, count / target_chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool->submit([&body, begin, end] { body(begin, end); });
  }
  pool->wait_idle();
}

void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, count,
                      [&body](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

}  // namespace mlck::util

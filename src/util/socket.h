#pragma once

#include <cstddef>
#include <string>

namespace mlck::util {

/// Thin RAII owner of one POSIX file descriptor, move-only. -1 means
/// "no descriptor". Used for the advisory-service plumbing (Unix-domain
/// sockets, self-pipes); higher layers never touch raw ints.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { close(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;

  /// shutdown(2) both directions: unblocks any thread sitting in a
  /// blocking read on this descriptor (they see EOF) without racing the
  /// descriptor's lifetime the way close() from another thread would.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Reads exactly @p size bytes, looping over partial reads and EINTR.
/// Returns the number of bytes actually read: @p size on success, less
/// when the peer closed mid-read (0 for a clean EOF before any byte),
/// or -1 on a read error.
long read_exact(int fd, void* buffer, std::size_t size) noexcept;

/// Writes all @p size bytes, looping over partial writes and EINTR.
/// SIGPIPE is suppressed on sockets (MSG_NOSIGNAL): writing to a peer
/// that already closed returns false instead of killing the process.
/// Non-socket descriptors (pipes) fall back to plain write(2).
bool write_all(int fd, const void* buffer, std::size_t size) noexcept;

/// Blocks until @p fd is readable. @p timeout_ms < 0 waits forever.
/// Returns true when readable, false on timeout or poll error.
bool wait_readable(int fd, int timeout_ms) noexcept;

/// Blocks until either descriptor is readable (self-pipe select pattern:
/// the serve loop waits on "signal arrived" or "shutdown op arrived").
/// Returns the readable descriptor, or -1 on poll error.
int wait_either_readable(int fd_a, int fd_b) noexcept;

/// A Unix-domain stream listener bound to a filesystem path. The path is
/// unlinked on bind (stale socket files from a previous run never block
/// a restart) and again on destruction.
class UnixListener {
 public:
  /// Binds and listens; throws std::runtime_error naming the path and
  /// errno on failure (path too long for sockaddr_un, bind/listen error).
  static UnixListener bind(const std::string& path, int backlog = 64);

  UnixListener(UnixListener&&) = default;
  UnixListener& operator=(UnixListener&&) = default;
  ~UnixListener();

  /// Accepts one connection (blocking). Returns an invalid Fd when the
  /// listener was shut down or accept failed.
  Fd accept() const noexcept;

  int fd() const noexcept { return fd_.get(); }
  const std::string& path() const noexcept { return path_; }

  /// Stops accepting: wakes any blocked accept() with an error.
  void shutdown() noexcept { fd_.shutdown_both(); }

 private:
  UnixListener(Fd fd, std::string path)
      : fd_(std::move(fd)), path_(std::move(path)) {}
  Fd fd_;
  std::string path_;
};

/// Connects to a Unix-domain stream socket; throws std::runtime_error
/// naming the path and errno when the daemon is not listening there.
Fd unix_connect(const std::string& path);

/// A pipe whose write end is async-signal-safe to poke: the self-pipe
/// trick behind both the daemon's signal handling and its cross-thread
/// stop event.
class Pipe {
 public:
  /// Throws std::runtime_error on pipe(2) failure.
  Pipe();

  int read_fd() const noexcept { return read_.get(); }
  int write_fd() const noexcept { return write_.get(); }

  /// Writes one byte (best-effort, async-signal-safe).
  void poke() noexcept;

  /// Drains any pending bytes without blocking.
  void drain() noexcept;

 private:
  Fd read_;
  Fd write_;
};

}  // namespace mlck::util

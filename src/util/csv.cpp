#include "util/csv.h"

#include <ostream>

namespace mlck::util {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace mlck::util

#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace mlck::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    if (metrics_.queue_depth_high_water != nullptr) {
      metrics_.queue_depth_high_water->set_max(
          static_cast<double>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr error;
    std::swap(error, first_exception_);
    std::rethrow_exception(error);
  }
}

void ThreadPool::attach_metrics(const ThreadPoolMetrics& metrics) {
  std::lock_guard lock(mutex_);
  metrics_ = metrics;
}

void ThreadPool::attach_trace(obs::TraceSink* sink) {
  std::lock_guard lock(mutex_);
  trace_ = sink;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  obs::TraceSink* named_sink = nullptr;  // claim the track name once
  for (;;) {
    std::function<void()> task;
    ThreadPoolMetrics metrics;
    obs::TraceSink* trace = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      metrics = metrics_;
      trace = trace_;
    }
    if (trace != nullptr && trace != named_sink) {
      trace->name_current_thread("pool worker " +
                                 std::to_string(worker_index));
      named_sink = trace;
    }
    std::exception_ptr error;
    {
      obs::ScopedTimer timer(metrics.task_latency_ns);
      obs::Span span(trace, "pool.task", "pool");
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (error == nullptr && metrics.tasks_run != nullptr) {
      metrics.tasks_run->add();
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (error != nullptr && first_exception_ == nullptr) {
        first_exception_ = error;
      }
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace mlck::util

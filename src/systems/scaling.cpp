#include "systems/scaling.h"

#include "systems/test_systems.h"

#include <string>

namespace mlck::systems {

SystemConfig scaled_system_b(double mtbf_minutes, double pfs_cost_minutes,
                             double base_time) {
  SystemConfig cfg = table1_system("B");
  cfg.name = "B(mtbf=" + std::to_string(static_cast<int>(mtbf_minutes)) +
             ",pfs=" + std::to_string(static_cast<int>(pfs_cost_minutes)) +
             ")";
  cfg.mtbf = mtbf_minutes;
  cfg.checkpoint_cost.back() = pfs_cost_minutes;
  cfg.restart_cost.back() = pfs_cost_minutes;
  cfg.base_time = base_time;
  cfg.validate();
  return cfg;
}

std::vector<double> figure4_mtbf_grid() { return {26.0, 20.0, 15.0, 9.0, 3.0}; }

std::vector<double> figure4_pfs_cost_grid() {
  return {10.0, 20.0, 30.0, 40.0};
}

std::vector<double> figure5_pfs_cost_grid() { return {10.0, 20.0}; }

}  // namespace mlck::systems

#pragma once

#include <string>
#include <vector>

namespace mlck::systems {

/// Description of an HPC platform + application pair as used throughout
/// the paper: a multilevel checkpoint hierarchy with per-severity failure
/// rates, per-level checkpoint/restart costs, and the application's
/// failure-free ("baseline") execution time.
///
/// All times are in minutes (the unit of the paper's Table I).
///
/// Levels are indexed 0..levels()-1 in code; level k here is "level k+1"
/// in the paper. A *severity-k* failure destroys checkpoint data held at
/// levels below k and requires a restart from a checkpoint of level >= k
/// (paper Sec. III-B). The usual hierarchy has severity_probability
/// decreasing-ish and costs increasing with level, but neither is required
/// (Table I system M has most failures at severity 2).
struct SystemConfig {
  std::string name;

  /// System mean time between failures, minutes; the total failure rate
  /// across all severities is 1 / mtbf.
  double mtbf = 0.0;

  /// S_i: probability that a failure has severity i. Must sum to ~1.
  std::vector<double> severity_probability;

  /// delta_i: time to write a level-i checkpoint. Per the SCR protocol a
  /// level-i checkpoint subsumes writing all lower levels, and these costs
  /// already include that (paper Sec. II-B).
  std::vector<double> checkpoint_cost;

  /// R_i: time to restart from a level-i checkpoint. Table I systems use
  /// R_i == delta_i as in prior work.
  std::vector<double> restart_cost;

  /// T_B: failure-free application execution time.
  double base_time = 0.0;

  /// Number of checkpoint levels L.
  int levels() const noexcept {
    return static_cast<int>(severity_probability.size());
  }

  /// Total failure rate lambda = 1 / MTBF (all severities).
  double lambda_total() const noexcept { return 1.0 / mtbf; }

  /// lambda_i = S_i * lambda: rate of severity-i failures (level 0-based).
  double lambda(int level) const noexcept {
    return severity_probability[static_cast<std::size_t>(level)] /
           mtbf;
  }

  /// Sum of lambda_j for j <= level: the rate of every failure a level
  /// <= `level` interval must account for (the paper's lambda_c).
  double lambda_cumulative(int level) const noexcept;

  /// Throws std::invalid_argument when the configuration is malformed
  /// (size mismatches, non-positive MTBF/base time, negative costs,
  /// severity probabilities not summing to ~1).
  void validate() const;

  /// Convenience constructor mirroring a Table I row: checkpoint and
  /// restart costs equal.
  static SystemConfig from_table_row(std::string name, int levels,
                                     double mtbf_minutes,
                                     std::vector<double> severity_probability,
                                     std::vector<double> cr_cost_minutes,
                                     double base_time_minutes);
};

}  // namespace mlck::systems

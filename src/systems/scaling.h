#pragma once

#include <vector>

#include "systems/system_config.h"

namespace mlck::systems {

/// Derives the exascale-like scenarios of paper Figures 4 and 5 from
/// Table I system B: overrides the system MTBF and the level-L (PFS)
/// checkpoint/restart cost, keeping lower-level costs and the severity
/// distribution fixed. @p base_time sets T_B (1440 min for Fig. 4,
/// 30 min for Fig. 5).
SystemConfig scaled_system_b(double mtbf_minutes, double pfs_cost_minutes,
                             double base_time);

/// The paper's Fig. 4/5 MTBF grid: five values spanning the predicted
/// exascale range of 3-26 minutes, hardest last.
std::vector<double> figure4_mtbf_grid();

/// The paper's Fig. 4 PFS checkpoint/restart cost grid (sections a-d).
std::vector<double> figure4_pfs_cost_grid();

/// The Fig. 5 subset of PFS costs (sections a-b).
std::vector<double> figure5_pfs_cost_grid();

}  // namespace mlck::systems

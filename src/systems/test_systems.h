#pragma once

#include <vector>

#include "systems/system_config.h"

namespace mlck::systems {

/// The eleven test systems of paper Table I, in the paper's order of
/// monotonically increasing resilience difficulty:
///
///   M        [5]  BlueGene/L Coastal, 3 levels, MTBF 6944.45 min
///   B        [19] BlueGene/Q Mira,    4 levels, MTBF  333.33 min
///   D1..D9   [17] ANL Fusion cases,   2 levels, MTBF 51.42 .. 3.13 min
///
/// Values are transcribed verbatim (all times in minutes, severities as
/// probability distributions, checkpoint cost == restart cost).
std::vector<SystemConfig> table1_systems();

/// Looks up a Table I system by name ("M", "B", "D1".."D9").
/// Throws std::out_of_range for unknown names.
SystemConfig table1_system(const std::string& name);

}  // namespace mlck::systems

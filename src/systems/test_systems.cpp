#include "systems/test_systems.h"

#include <stdexcept>

namespace mlck::systems {

std::vector<SystemConfig> table1_systems() {
  std::vector<SystemConfig> out;
  out.push_back(SystemConfig::from_table_row(
      "M", 3, 6944.45, {0.083, 0.75, 0.167}, {0.008, 0.075, 17.53}, 1440.0));
  out.push_back(SystemConfig::from_table_row(
      "B", 4, 333.33, {0.556, 0.278, 0.139, 0.027}, {0.167, 0.5, 0.833, 2.5},
      1440.0));
  out.push_back(SystemConfig::from_table_row(
      "D1", 2, 51.42, {0.857, 0.143}, {0.333, 0.833}, 1440.0));
  out.push_back(SystemConfig::from_table_row(
      "D2", 2, 24.0, {0.833, 0.167}, {0.333, 0.833}, 1440.0));
  out.push_back(SystemConfig::from_table_row(
      "D3", 2, 12.0, {0.833, 0.167}, {0.167, 0.667}, 1440.0));
  out.push_back(SystemConfig::from_table_row(
      "D4", 2, 6.0, {0.833, 0.167}, {0.167, 0.667}, 1440.0));
  out.push_back(SystemConfig::from_table_row(
      "D5", 2, 12.0, {0.833, 0.167}, {0.333, 1.67}, 1440.0));
  out.push_back(SystemConfig::from_table_row(
      "D6", 2, 6.0, {0.833, 0.167}, {0.167, 1.67}, 720.0));
  out.push_back(SystemConfig::from_table_row(
      "D7", 2, 4.0, {0.833, 0.167}, {0.667, 3.33}, 360.0));
  out.push_back(SystemConfig::from_table_row(
      "D8", 2, 3.13, {0.870, 0.130}, {0.833, 5.0}, 360.0));
  out.push_back(SystemConfig::from_table_row(
      "D9", 2, 3.13, {0.870, 0.130}, {0.833, 5.0}, 180.0));
  return out;
}

SystemConfig table1_system(const std::string& name) {
  for (auto& cfg : table1_systems()) {
    if (cfg.name == name) return cfg;
  }
  throw std::out_of_range("unknown Table I system: " + name);
}

}  // namespace mlck::systems

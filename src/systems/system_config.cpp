#include "systems/system_config.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace mlck::systems {

double SystemConfig::lambda_cumulative(int level) const noexcept {
  double sum = 0.0;
  for (int j = 0; j <= level; ++j) sum += lambda(j);
  return sum;
}

void SystemConfig::validate() const {
  if (mtbf <= 0.0) throw std::invalid_argument(name + ": MTBF must be > 0");
  if (base_time <= 0.0) {
    throw std::invalid_argument(name + ": base_time must be > 0");
  }
  const auto n = severity_probability.size();
  if (n == 0) throw std::invalid_argument(name + ": no checkpoint levels");
  if (checkpoint_cost.size() != n || restart_cost.size() != n) {
    throw std::invalid_argument(name + ": per-level vectors disagree on L");
  }
  double total = 0.0;
  for (const double s : severity_probability) {
    if (s < 0.0) {
      throw std::invalid_argument(name + ": negative severity probability");
    }
    total += s;
  }
  if (std::abs(total - 1.0) > 1e-3) {
    throw std::invalid_argument(name +
                                ": severity probabilities must sum to 1");
  }
  for (const double c : checkpoint_cost) {
    if (c < 0.0) throw std::invalid_argument(name + ": negative ckpt cost");
  }
  for (const double r : restart_cost) {
    if (r < 0.0) throw std::invalid_argument(name + ": negative restart cost");
  }
}

SystemConfig SystemConfig::from_table_row(
    std::string name, int levels, double mtbf_minutes,
    std::vector<double> severity_probability,
    std::vector<double> cr_cost_minutes, double base_time_minutes) {
  SystemConfig cfg;
  cfg.name = std::move(name);
  cfg.mtbf = mtbf_minutes;
  cfg.severity_probability = std::move(severity_probability);
  cfg.checkpoint_cost = cr_cost_minutes;
  cfg.restart_cost = std::move(cr_cost_minutes);
  cfg.base_time = base_time_minutes;
  if (cfg.levels() != levels) {
    throw std::invalid_argument(cfg.name + ": level count mismatch");
  }
  cfg.validate();
  return cfg;
}

}  // namespace mlck::systems

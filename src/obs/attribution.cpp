#include "obs/attribution.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/table.h"

namespace mlck::obs {

std::string attribution_counter(const std::string& span_name) {
  // The join table: each instrumented phase's unit-of-work counter.
  // Extend alongside docs/OBSERVABILITY.md when a new phase is
  // instrumented.
  static const std::map<std::string, std::string> kJoin = {
      {"optimizer.coarse_sweep", "optimizer.plans_swept"},
      {"optimizer.sweep_block", "optimizer.plans_swept"},
      {"optimizer.sweep_slice", "optimizer.plans_swept"},
      {"optimizer.refine", "optimizer.plans_refined"},
      {"engine.context_build", "engine.context_cache.misses"},
      {"scenario.select_plan", "engine.evaluations"},
      {"scenario.simulate", "sim.trials"},
      {"pool.task", "pool.tasks_run"},
  };
  const auto it = kJoin.find(span_name);
  return it == kJoin.end() ? std::string() : it->second;
}

std::vector<PhaseCost> attribute_costs(const std::vector<SpanEvent>& spans,
                                       const RegistrySnapshot& snapshot) {
  // Resolve nesting per thread: sort by (start asc, end desc) so a parent
  // precedes the spans it contains, then stack-walk containment. Each
  // span's duration is charged to its *direct* parent's child time only,
  // so a grandchild never double-counts into the grandparent.
  std::map<int, std::vector<std::size_t>> by_thread;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_thread[spans[i].thread_id].push_back(i);
  }
  std::vector<double> child_us(spans.size(), 0.0);
  for (auto& [thread_id, order] : by_thread) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (spans[a].start_us != spans[b].start_us) {
        return spans[a].start_us < spans[b].start_us;
      }
      return spans[a].end_us > spans[b].end_us;
    });
    std::vector<std::size_t> stack;
    for (const std::size_t i : order) {
      while (!stack.empty() && spans[stack.back()].end_us <= spans[i].start_us) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        child_us[stack.back()] += spans[i].end_us - spans[i].start_us;
      }
      stack.push_back(i);
    }
  }

  std::map<std::string, std::uint64_t> counters(snapshot.counters.begin(),
                                                snapshot.counters.end());
  std::map<std::string, PhaseCost> by_name;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanEvent& span = spans[i];
    PhaseCost& cost = by_name[span.name];
    if (cost.spans == 0) {
      cost.name = span.name;
      cost.category = span.category;
      cost.counter = attribution_counter(span.name);
      if (!cost.counter.empty()) {
        const auto it = counters.find(cost.counter);
        if (it != counters.end()) cost.events = it->second;
      }
    }
    const double duration = span.end_us - span.start_us;
    cost.spans += 1;
    cost.total_us += duration;
    cost.child_us += child_us[i];
  }

  std::vector<PhaseCost> phases;
  phases.reserve(by_name.size());
  for (auto& [name, cost] : by_name) {
    cost.self_us = std::max(0.0, cost.total_us - cost.child_us);
    if (cost.total_us > 0.0 && cost.events > 0) {
      cost.events_per_sec =
          static_cast<double>(cost.events) / (cost.total_us * 1e-6);
    }
    phases.push_back(std::move(cost));
  }
  std::sort(phases.begin(), phases.end(),
            [](const PhaseCost& a, const PhaseCost& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;  // deterministic tie-break
            });
  return phases;
}

util::Json attribution_json(const std::vector<PhaseCost>& phases) {
  util::Json::Array array;
  array.reserve(phases.size());
  for (const PhaseCost& cost : phases) {
    util::Json::Object entry;
    entry["name"] = util::Json(cost.name);
    entry["category"] = util::Json(cost.category);
    entry["spans"] = util::Json(static_cast<double>(cost.spans));
    entry["total_us"] = util::Json(cost.total_us);
    entry["self_us"] = util::Json(cost.self_us);
    entry["child_us"] = util::Json(cost.child_us);
    if (!cost.counter.empty()) {
      entry["counter"] = util::Json(cost.counter);
      entry["events"] = util::Json(static_cast<double>(cost.events));
      entry["events_per_sec"] = util::Json(cost.events_per_sec);
    }
    array.emplace_back(std::move(entry));
  }
  util::Json::Object doc;
  doc["phases"] = util::Json(std::move(array));
  return util::Json(std::move(doc));
}

void print_attribution(std::ostream& out,
                       const std::vector<PhaseCost>& phases) {
  util::Table table({"phase", "spans", "total ms", "self ms", "child ms",
                     "events", "events/s"});
  for (const PhaseCost& cost : phases) {
    table.add_row({cost.name, std::to_string(cost.spans),
                   util::Table::num(cost.total_us / 1e3, 3),
                   util::Table::num(cost.self_us / 1e3, 3),
                   util::Table::num(cost.child_us / 1e3, 3),
                   cost.counter.empty() ? "-" : std::to_string(cost.events),
                   cost.counter.empty()
                       ? "-"
                       : util::Table::num(cost.events_per_sec, 1)});
  }
  table.print(out);
}

}  // namespace mlck::obs

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "util/json.h"

namespace mlck::obs {

/// One sampled value of a counter or gauge series.
struct SamplePoint {
  /// Seconds since the sampler started (host steady clock).
  double t = 0.0;
  /// Counter: cumulative count at the tick. Gauge: the gauge's value.
  double value = 0.0;
  /// Counter: events/sec derived from the previous tick (0 for the first
  /// point). Gauge: 0 (rates are not meaningful for last-write-wins
  /// values).
  double rate = 0.0;
};

/// One sampled summary of a histogram series. Raw per-sample values are
/// not retained (the histogram itself already aggregates); the timeline
/// keeps the summary statistics at each tick instead.
struct HistogramPoint {
  double t = 0.0;            ///< seconds since sampler start
  std::uint64_t count = 0;   ///< cumulative samples recorded
  double rate = 0.0;         ///< samples/sec since the previous tick
  double mean = 0.0;         ///< cumulative mean (sum / count)
  double p50 = 0.0;          ///< bucket-estimated quantiles (<= 19% error)
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Fixed-capacity time series for one counter or gauge metric.
struct MetricSeries {
  enum class Kind { kCounter, kGauge };
  Kind kind = Kind::kCounter;
  /// Oldest-first; bounded by TelemetrySampler::Options::capacity (the
  /// oldest point is dropped once full).
  std::deque<SamplePoint> points;
};

/// Fixed-capacity time series for one histogram metric.
struct HistogramSeries {
  std::deque<HistogramPoint> points;
};

/// Background thread that snapshots a MetricsRegistry at a fixed cadence
/// and accumulates per-metric ring buffers — the live timeline behind
/// `--timeline` and the sampler lanes of bench_obs.
///
/// Design contract (mirrors the rest of the observe-only stack):
///  * Hot paths are never touched: each tick calls
///    MetricsRegistry::snapshot(), which reads metric values with relaxed
///    atomic loads. Instrumented code keeps its one-branch-when-detached
///    cost; attaching a sampler adds no synchronization to it.
///  * The ring buffers live behind the sampler's own mutex, contended
///    only by the sampler thread and exporters (series()/to_json()) —
///    never by instrumented code.
///  * Counters additionally get a derived rate (delta / elapsed) so the
///    timeline answers "how fast" without post-processing; histograms
///    keep cumulative count/mean plus the bucket-estimated quantiles.
///  * The sampler reports on itself through the registry it samples:
///    "obs.sampler.ticks" counts completed ticks and
///    "obs.sampler.overruns" counts ticks that finished after the next
///    deadline had already passed (cadence too fast for the registry
///    size). Overruns skip ahead rather than bunching up.
///
/// Lifecycle: construct, start(), run the workload, stop() (also called
/// by the destructor), then read series()/to_json(). start()/stop() are
/// idempotent; restarting after a stop resumes appending to the same
/// buffers with the original epoch.
class TelemetrySampler {
 public:
  struct Options {
    /// Tick cadence. The default (50 ms) gives ~20 points/sec — enough
    /// resolution for second-scale phases at negligible cost.
    std::chrono::milliseconds period{50};
    /// Max points retained per metric series; the oldest point is
    /// dropped once a ring is full. 1024 points at the default cadence
    /// is ~51 s of history.
    std::size_t capacity = 1024;
    /// Take a sample immediately on start() (before the first period
    /// elapses) so short workloads still get a baseline point.
    bool sample_on_start = true;
    /// Take a final sample inside stop() so the timeline's last point
    /// reflects the workload's end state.
    bool sample_on_stop = true;
  };

  /// @p registry must outlive the sampler. Registers the
  /// obs.sampler.ticks / obs.sampler.overruns self-metrics immediately
  /// (so they appear in exports even before the first tick).
  explicit TelemetrySampler(MetricsRegistry& registry)
      : TelemetrySampler(registry, Options()) {}
  TelemetrySampler(MetricsRegistry& registry, Options options);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launches the background thread. No-op if already running.
  void start();

  /// Takes the final sample (if configured), stops the thread, and
  /// joins it. No-op if not running. Safe to call from any thread
  /// except the sampler thread itself.
  void stop();

  /// Takes one sample synchronously on the calling thread. Usable
  /// whether or not the background thread is running (the tick counter
  /// advances either way).
  void sample_now();

  bool running() const;

  /// Completed ticks (background and sample_now() alike).
  std::uint64_t ticks() const;

  /// Ticks that completed after their next deadline had already passed.
  std::uint64_t overruns() const;

  /// Copy of the counter/gauge series accumulated so far, name-keyed.
  std::map<std::string, MetricSeries> series() const;

  /// Copy of the histogram series accumulated so far, name-keyed.
  std::map<std::string, HistogramSeries> histogram_series() const;

  /// The whole timeline as one JSON document:
  ///   { "period_ms": P, "capacity": C, "ticks": N, "overruns": O,
  ///     "series": { name: { "kind": "counter"|"gauge",
  ///                         "points": [ { "t", "value", "rate" }, ... ] } },
  ///     "histograms": { name: { "points": [ { "t", "count", "rate",
  ///                         "mean", "p50", "p90", "p99" }, ... ] } } }
  /// Deterministic key order; suitable for sidecar embedding.
  util::Json to_json() const;

 private:
  void sampler_loop();
  /// Appends one sample of every metric at elapsed time @p t seconds.
  /// Caller must hold data_mutex_.
  void sample_locked(double t);
  double elapsed_seconds() const;

  MetricsRegistry& registry_;
  const Options options_;
  Counter& ticks_metric_;
  Counter& overruns_metric_;
  const std::chrono::steady_clock::time_point epoch_;

  // Thread control.
  mutable std::mutex control_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  std::thread thread_;

  // Accumulated series; touched only by the sampler thread (or
  // sample_now() callers) and exporters.
  mutable std::mutex data_mutex_;
  std::map<std::string, MetricSeries> series_;
  std::map<std::string, HistogramSeries> histogram_series_;
  std::uint64_t ticks_ = 0;
  std::uint64_t overruns_ = 0;
};

}  // namespace mlck::obs

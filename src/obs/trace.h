#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/accounting.h"
#include "util/json.h"

// Forward declarations keep this header includable from util (the thread
// pool emits spans) without pulling the simulator headers into low-level
// translation units; trace.cpp includes the full definitions. The obs
// library uses only the header-visible POD simulator types, so no link
// dependency on mlck_sim is created (same compile-only arrangement as
// obs/metrics.h, in the other direction).
namespace mlck::systems {
struct SystemConfig;
}
namespace mlck::sim {
struct TraceEvent;
struct TrialTraceCapture;
}  // namespace mlck::sim

namespace mlck::obs {

/// Structured host-side tracing, following the same contract as the
/// metric primitives (docs/OBSERVABILITY.md):
///  * **observe-only** — spans never feed back into model or simulation
///    arithmetic; results are bit-identical with and without a sink;
///  * **null-by-default** — every instrumentation site holds a TraceSink
///    pointer that is null unless tracing was requested, and a null sink
///    costs one predictable branch (no clock read, no allocation);
///  * thread-safe — spans may be recorded concurrently from pool workers.

/// One completed host-side span: a named phase on one thread, with start
/// and end as microsecond offsets from the owning sink's epoch.
struct SpanEvent {
  std::string name;      ///< phase name ("optimizer.coarse_sweep", ...)
  std::string category;  ///< coarse grouping ("engine", "optimizer", ...)
  int thread_id = 0;     ///< stable per-sink thread id, first-seen order
  double start_us = 0.0;
  double end_us = 0.0;
};

/// Thread-safe collector of completed spans. The sink assigns each
/// recording thread a stable small integer id in first-seen order (the
/// Chrome-export track id); threads may claim a human-readable track name
/// once via name_current_thread. Header-only (like the metric primitives
/// in obs/metrics.h) so util-layer code can record spans without a link
/// dependency on the obs library.
class TraceSink {
 public:
  TraceSink() : epoch_(std::chrono::steady_clock::now()) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// All span timestamps are offsets from this instant.
  std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

  /// Appends a completed span for the calling thread.
  void record(std::string name, std::string category,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end) {
    using us = std::chrono::duration<double, std::micro>;
    const double start_us = us(start - epoch_).count();
    const double end_us = us(end - epoch_).count();
    std::lock_guard<std::mutex> lock(mutex_);
    SpanEvent ev;
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.thread_id = thread_slot_locked();
    ev.start_us = start_us;
    ev.end_us = end_us;
    events_.push_back(std::move(ev));
  }

  /// Names the calling thread's export track ("pool worker 3"). First
  /// writer wins; later calls are no-ops, so per-task callers need not
  /// guard it.
  void name_current_thread(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    names_.emplace(thread_slot_locked(), name);  // first writer wins
  }

  /// Snapshot of everything recorded so far, in completion order.
  std::vector<SpanEvent> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  /// Track names claimed so far, keyed by thread id.
  std::map<int, std::string> thread_names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return names_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }

 private:
  /// Id of the calling thread; assigned on first use (mutex_ held).
  int thread_slot_locked() {
    const auto [it, inserted] = ids_.emplace(std::this_thread::get_id(),
                                             static_cast<int>(ids_.size()));
    (void)inserted;
    return it->second;
  }

  mutable std::mutex mutex_;
  const std::chrono::steady_clock::time_point epoch_;
  std::map<std::thread::id, int> ids_;
  std::map<int, std::string> names_;
  std::vector<SpanEvent> events_;
};

/// RAII span: construction stamps the start, destruction records the
/// completed SpanEvent. Null-safe: with sink == nullptr neither the clock
/// is read nor anything recorded.
class Span {
 public:
  Span(TraceSink* sink, std::string name, std::string category)
      : sink_(sink), name_(std::move(name)), category_(std::move(category)) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Span() {
    if (sink_ != nullptr) {
      sink_->record(std::move(name_), std::move(category_), start_,
                    std::chrono::steady_clock::now());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink* sink_;
  std::string name_;
  std::string category_;
  std::chrono::steady_clock::time_point start_{};
};

/// ---- Exporters ---------------------------------------------------------

/// Chrome trace-event JSON (the `{"traceEvents": [...]}` array-of-events
/// form), loadable in Perfetto / chrome://tracing. Either argument may be
/// null. Host spans land in process 1 ("mlck host"), one track per
/// recording thread (pool workers appear as separate tracks); captured
/// simulator trials land in process 2 ("mlck simulator"), one track per
/// trial, with one simulated minute rendered as one second (ts in
/// microseconds = minutes x 1e6) and the raw event fields (completed,
/// failure_severity, truncated_by_cap, work) attached as args. Events are
/// sorted by (pid, tid, ts), so timestamps are monotonic per track.
util::Json chrome_trace_json(const TraceSink* host,
                             const sim::TrialTraceCapture* trials);

/// Line-delimited JSON for scripting: one object per line, host spans as
/// {"type":"span",...} then simulator events as {"type":"sim_event",...}
/// with times in the source units (microseconds / minutes).
std::string trace_jsonl(const TraceSink* host,
                        const sim::TrialTraceCapture* trials);

/// ---- Trace auditor -----------------------------------------------------

/// Outcome of auditing one trial's event stream against its result.
struct TraceAuditReport {
  /// Human-readable violations; empty means the trace conserves time.
  std::vector<std::string> errors;
  /// The breakdown reconstructed from the events alone (plus the
  /// system's per-level costs); compared bit-for-bit against the trial's
  /// SimBreakdown.
  sim::SimBreakdown reconstructed;

  bool ok() const noexcept { return errors.empty(); }
};

/// Replays a trial's TraceEvent stream and checks the simulator's
/// conservation invariants:
///  * events tile [0, total_time] exactly — each event starts bit-for-bit
///    where the previous one ended, the first starts at 0, the last ends
///    at total_time, and no event runs backwards;
///  * the breakdown reconstructed from the stream equals the trial's
///    SimBreakdown bit-for-bit in every bucket, including cap-truncation
///    attribution (a truncated checkpoint/restart charges its
///    failed-attempt bucket, truncated computation counts as useful) and
///    scratch-restart rollbacks;
///  * event counts match the TrialResult counters (failures, completed
///    checkpoints, completed/failed restarts, scratch restarts), and a
///    truncated_by_cap event implies result.capped.
///
/// The reconstruction uses only the event stream, the per-event committed
/// work annotations, and @p system's per-level checkpoint/restart costs —
/// it never consults the schedule, the failure source, or the restart
/// policy, so it is an independent accounting of where the simulator said
/// the time went.
TraceAuditReport audit_trial_trace(const systems::SystemConfig& system,
                                   const sim::TrialResult& result,
                                   const std::vector<sim::TraceEvent>& events);

}  // namespace mlck::obs

#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace mlck::obs {

/// Thread-safe, name-keyed store of metric instances. Lookup/creation is
/// serialized on a mutex; the returned references stay valid for the
/// registry's lifetime (values are heap-allocated), so callers resolve a
/// metric once up front and then update it through the lock-free
/// primitive — the registry itself is never on a hot path.
///
/// Names are dot-separated by convention ("engine.context_cache.hits");
/// docs/OBSERVABILITY.md lists every name emitted by the stack. A name
/// identifies exactly one metric kind: asking for "x" as a counter after
/// it was created as a gauge throws std::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The metric named @p name, created on first use.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot of every metric as one JSON document:
  ///   { "counters":   { name: count, ... },
  ///     "gauges":     { name: value, ... },
  ///     "histograms": { name: { "count", "sum", "mean", "min", "max",
  ///                             "buckets": [ { "le", "count" }, ... ] } } }
  /// Only non-empty sections and non-zero histogram buckets are emitted;
  /// key order is deterministic (sorted), so sidecars diff cleanly.
  util::Json to_json() const;

  /// Human-readable dump: one table per metric kind.
  void print(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void claim_name(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mlck::obs

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"

namespace mlck::obs {

/// Point-in-time summary of one Histogram: exact totals plus the
/// bucket-estimated quantiles (<= 19% error, obs/metrics.h). min/max are
/// +inf/-inf and the quantiles NaN when count == 0. Reading order
/// matters: count is loaded first (acquire, pairing with record()'s
/// release), so every other field reflects at least `count` samples —
/// never a count whose sum is still missing.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Non-zero buckets only, ascending: (inclusive upper edge, count).
  /// The open-ended last bucket reports +inf as its edge.
  std::vector<std::pair<double, std::uint64_t>> buckets;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// One consistent walk of a registry's metrics, name-sorted per kind.
/// This is the exchange type every exporter consumes (JSON sidecar,
/// OpenMetrics text, the telemetry sampler, the cost-attribution
/// report), so a metric added anywhere shows up in all of them.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  std::size_t metric_count() const noexcept {
    return counters.size() + gauges.size() + histograms.size();
  }
};

/// Thread-safe, name-keyed store of metric instances. Lookup/creation is
/// serialized on a mutex; the returned references stay valid for the
/// registry's lifetime (values are heap-allocated), so callers resolve a
/// metric once up front and then update it through the lock-free
/// primitive — the registry itself is never on a hot path.
///
/// Names are dot-separated by convention ("engine.context_cache.hits");
/// docs/OBSERVABILITY.md lists every name emitted by the stack. A name
/// identifies exactly one metric kind: asking for "x" as a counter after
/// it was created as a gauge throws std::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The metric named @p name, created on first use.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of every metric's value. The registry mutex is
  /// held only to walk the name maps; the metric values themselves are
  /// read with the primitives' lock-free atomic loads, so hot-path
  /// updates proceed concurrently (and are never blocked by a snapshot).
  RegistrySnapshot snapshot() const;

  /// Snapshot of every metric as one JSON document:
  ///   { "counters":   { name: count, ... },
  ///     "gauges":     { name: value, ... },
  ///     "histograms": { name: { "count", "sum", "mean", "min", "max",
  ///                             "buckets": [ { "le", "count" }, ... ] } } }
  /// Only non-empty sections and non-zero histogram buckets are emitted;
  /// key order is deterministic (sorted), so sidecars diff cleanly.
  util::Json to_json() const;

  /// Human-readable dump: one table per metric kind.
  void print(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void claim_name(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mlck::obs

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/json.h"

namespace mlck::obs {

/// Aggregated cost of one span name across a trace: where the wall time
/// went, split into self time (inside the phase but outside any nested
/// span) and child time (inside nested spans), joined with the per-phase
/// counter that counts the phase's unit of work.
struct PhaseCost {
  std::string name;      ///< span name ("optimizer.coarse_sweep", ...)
  std::string category;  ///< span category of the first occurrence
  std::size_t spans = 0;  ///< occurrences aggregated
  double total_us = 0.0;  ///< sum of span durations
  double self_us = 0.0;   ///< total minus time in *direct* child spans
  double child_us = 0.0;  ///< time in direct child spans
  /// Joined counter name; empty when the phase has no known unit of
  /// work (see attribution join table in docs/OBSERVABILITY.md).
  std::string counter;
  std::uint64_t events = 0;  ///< the counter's value at report time
  /// events / (total_us seconds). Spans on different threads overlap in
  /// wall time, so this is throughput per *busy* second summed across
  /// workers, not per elapsed second.
  double events_per_sec = 0.0;
};

/// The counter a span name is joined with in the attribution report
/// ("optimizer.coarse_sweep" -> "optimizer.plans_swept"); empty for
/// span names with no registered unit of work.
std::string attribution_counter(const std::string& span_name);

/// Joins @p spans with @p snapshot into per-phase costs, sorted by
/// descending total time. Nesting is resolved per thread: spans fully
/// contained in another span on the same thread count toward the outer
/// span's child time (direct parent only — a grandchild is charged to
/// its immediate parent, so no double counting).
std::vector<PhaseCost> attribute_costs(const std::vector<SpanEvent>& spans,
                                       const RegistrySnapshot& snapshot);

/// The report as JSON: { "phases": [ { "name", "category", "spans",
/// "total_us", "self_us", "child_us", "counter", "events",
/// "events_per_sec" }, ... ] } in the same descending-total order.
util::Json attribution_json(const std::vector<PhaseCost>& phases);

/// Human-readable table (used by `mlck report`).
void print_attribution(std::ostream& out,
                       const std::vector<PhaseCost>& phases);

}  // namespace mlck::obs

#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace mlck::obs {

/// Lock-free metric primitives. These are deliberately dependency-free
/// (pure std, header-only) so any layer — util included — can hold
/// pointers to them without creating a library cycle with the registry,
/// which lives one level up (obs/registry.h) and owns the instances.
///
/// Instrumentation contract used across the codebase: every
/// instrumentation site holds a *pointer* to a primitive that is null by
/// default. A null pointer means "no registry attached" and the site must
/// skip recording, so the uninstrumented path costs one predictable
/// branch and never perturbs results (metrics are observe-only; no
/// simulation or model arithmetic may read them).

/// Monotonically increasing event count. add() is a single relaxed
/// fetch_add — safe to call from any thread, including hot loops.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written / high-water value. set() overwrites; set_max() keeps the
/// maximum ever observed (CAS loop, contention-free in practice since
/// updates are rare compared to reads of the final value).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-layout histogram of non-negative samples: power-of-two buckets
/// (bucket i counts samples in (2^(i-1), 2^i]; bucket 0 catches
/// everything <= 1) plus exact count/sum/min/max. All updates are relaxed
/// atomics, so concurrent record() calls never lock; totals are exact,
/// the min/max pair is exact, and bucket placement is deterministic for a
/// given value.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, value);
    atomic_min(min_, value);
    atomic_max(max_, value);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf respectively when no sample was recorded.
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Approximate q-quantile (q in [0, 1]) from the power-of-two buckets:
  /// locates the bucket holding the nearest-rank sample (rank
  /// ceil(q * count)), then interpolates linearly across that bucket's
  /// span, with the bucket edges clamped to the recorded [min(), max()].
  /// Exact when every sample in the target bucket has one value (e.g. a
  /// single-sample histogram, or min == max within the bucket); otherwise
  /// the estimate and the true quantile share a bucket, so the estimate
  /// is within a factor of 2 of the true value (the bucket's edge ratio;
  /// see docs/OBSERVABILITY.md for the bound). NaN when empty.
  double quantile_estimate(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return std::numeric_limits<double>::quiet_NaN();
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Nearest-rank: the smallest sample with at least ceil(q * n) samples
    // at or below it.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t in_bucket = bucket_count(i);
      if (in_bucket == 0) continue;
      if (seen + in_bucket < rank) {
        seen += in_bucket;
        continue;
      }
      // Bucket i spans (2^(i-1), 2^i]; clamp to the observed extremes so
      // the estimate never leaves [min, max] (and the unbounded last
      // bucket and the catch-all bucket 0 get finite edges).
      double lo = i == 0 ? 0.0 : bucket_upper_bound(i - 1);
      double hi = bucket_upper_bound(i);
      const double lo_clamp = min();
      const double hi_clamp = max();
      if (lo < lo_clamp) lo = lo_clamp;
      if (hi > hi_clamp) hi = hi_clamp;
      if (hi < lo) hi = lo;  // whole bucket collapsed by the clamps
      // Linear interpolation at the rank's position inside the bucket;
      // with one sample in the bucket this lands on hi (= the sample when
      // the clamps pinned it).
      const double f = static_cast<double>(rank - seen) /
                       static_cast<double>(in_bucket);
      return lo + (hi - lo) * f;
    }
    return max();  // unreachable with a consistent count; defensive
  }

  /// Inclusive upper bound of bucket @p i (2^i; the last bucket is
  /// unbounded and reports +inf).
  static double bucket_upper_bound(std::size_t i) noexcept {
    if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, static_cast<int>(i));
  }

  static std::size_t bucket_index(double value) noexcept {
    if (!(value > 1.0)) return 0;  // <= 1, negative, and NaN
    const int e = std::ilogb(value);
    // value in (2^(e), 2^(e+1)] maps to bucket e+1, except exact powers
    // of two which ilogb already places at their own exponent.
    const std::size_t i = static_cast<std::size_t>(e) +
                          (value > std::ldexp(1.0, e) ? 1u : 0u);
    return i < kBuckets ? i : kBuckets - 1;
  }

 private:
  static void atomic_add(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// RAII wall-clock timer recording elapsed microseconds into a Histogram
/// on destruction. Null-safe: with histogram == nullptr neither the clock
/// is read nor anything recorded.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->record(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace mlck::obs

#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace mlck::obs {

/// Lock-free metric primitives. These are deliberately dependency-free
/// (pure std, header-only) so any layer — util included — can hold
/// pointers to them without creating a library cycle with the registry,
/// which lives one level up (obs/registry.h) and owns the instances.
///
/// Instrumentation contract used across the codebase: every
/// instrumentation site holds a *pointer* to a primitive that is null by
/// default. A null pointer means "no registry attached" and the site must
/// skip recording, so the uninstrumented path costs one predictable
/// branch and never perturbs results (metrics are observe-only; no
/// simulation or model arithmetic may read them).

/// Monotonically increasing event count. add() is a single relaxed
/// fetch_add — safe to call from any thread, including hot loops.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written / high-water value. set() overwrites; set_max() keeps the
/// maximum ever observed (CAS loop, contention-free in practice since
/// updates are rare compared to reads of the final value).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-layout histogram of non-negative samples: log-linear buckets
/// with 4 sub-buckets per power-of-two octave (bucket i, i >= 1, counts
/// samples in (2^((i-1)/4), 2^(i/4)]; bucket 0 catches everything <= 1)
/// plus exact count/sum/min/max. All updates are relaxed atomics except
/// the final count increment (release), so concurrent record() calls
/// never lock; totals are exact, the min/max pair is exact, and bucket
/// placement is deterministic for a given value.
///
/// Snapshot consistency: record() commits count_ *last* with release
/// ordering, and count() loads with acquire, so a reader that observes
/// count == n also observes at least n samples' worth of bucket, sum,
/// min, and max updates — a snapshot never reports a count whose sum or
/// buckets are still missing (no torn count/sum pairs; the concurrency
/// tests in tests/test_obs.cpp pin this).
class Histogram {
 public:
  /// Sub-buckets per power-of-two octave: bucket edges step by 2^(1/4).
  static constexpr std::size_t kSubBuckets = 4;
  static constexpr std::size_t kBuckets = 256;  ///< 64 octaves x 4

  void record(double value) noexcept {
    atomic_min(min_, value);
    atomic_max(max_, value);
    atomic_add(sum_, value);
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    // Publish last: a reader that sees this increment also sees the
    // sample's contribution to every other field (release/acquire pair
    // with count()).
    count_.fetch_add(1, std::memory_order_release);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf respectively when no sample was recorded.
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Approximate q-quantile (q in [0, 1]) from the log-linear buckets:
  /// locates the bucket holding the nearest-rank sample (rank
  /// ceil(q * count)), then interpolates linearly across that bucket's
  /// span, with the bucket edges clamped to the recorded [min(), max()].
  /// Exact when every sample in the target bucket has one value (e.g. a
  /// single-sample histogram, or min == max within the bucket); otherwise
  /// the estimate and the true quantile share a bucket, so the estimate
  /// is within a factor of 2^(1/4) ~ 1.19 of the true value — at most
  /// 19% off (the bucket's edge ratio; see docs/OBSERVABILITY.md for the
  /// bound). NaN when empty.
  double quantile_estimate(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return std::numeric_limits<double>::quiet_NaN();
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Nearest-rank: the smallest sample with at least ceil(q * n) samples
    // at or below it.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t in_bucket = bucket_count(i);
      if (in_bucket == 0) continue;
      if (seen + in_bucket < rank) {
        seen += in_bucket;
        continue;
      }
      // Bucket i spans (2^((i-1)/4), 2^(i/4)]; clamp to the observed
      // extremes so the estimate never leaves [min, max] (and the
      // unbounded last bucket and the catch-all bucket 0 get finite
      // edges).
      double lo = i == 0 ? 0.0 : bucket_upper_bound(i - 1);
      double hi = bucket_upper_bound(i);
      const double lo_clamp = min();
      const double hi_clamp = max();
      if (lo < lo_clamp) lo = lo_clamp;
      if (hi > hi_clamp) hi = hi_clamp;
      if (hi < lo) hi = lo;  // whole bucket collapsed by the clamps
      // Linear interpolation at the rank's position inside the bucket;
      // with one sample in the bucket this lands on hi (= the sample when
      // the clamps pinned it).
      const double f = static_cast<double>(rank - seen) /
                       static_cast<double>(in_bucket);
      return lo + (hi - lo) * f;
    }
    return max();  // unreachable with a consistent count; defensive
  }

  /// Inclusive upper bound of bucket @p i (2^(i/4); the last bucket is
  /// unbounded and reports +inf).
  static double bucket_upper_bound(std::size_t i) noexcept {
    if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
    return std::ldexp(kOctaveEdges[i % kSubBuckets],
                      static_cast<int>(i / kSubBuckets));
  }

  static std::size_t bucket_index(double value) noexcept {
    if (!(value > 1.0)) return 0;  // <= 1, negative, and NaN
    // Octave and fraction straight from the bit pattern (no
    // ilogb/ldexp libm calls — this runs once per sample on recording
    // hot paths): value > 1 guarantees a positive normal (or infinite)
    // double, so the biased exponent field is the octave and the raw
    // 52-bit mantissa orders exactly like the fractional part — the
    // quarter-power edges live in the same binade [1, 2), making the
    // integer compares bit-for-bit equivalent to comparing
    // value / 2^octave against kOctaveEdges.
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    const std::size_t e = (bits >> 52) - 1023;  // inf => 1024, clamped
    const std::uint64_t m = bits & kMantissaMask;
    // Sub-bucket within the octave: smallest quarter-power edge at or
    // above the fraction. Exact powers of two (mantissa 0) stay at
    // their own edge, mirroring the inclusive upper bounds.
    std::size_t sub = 0;
    if (m > kEdgeMantissa[3]) {
      sub = 4;
    } else if (m > kEdgeMantissa[2]) {
      sub = 3;
    } else if (m > kEdgeMantissa[1]) {
      sub = 2;
    } else if (m > 0) {
      sub = 1;
    }
    const std::size_t i = e * kSubBuckets + sub;
    return i < kBuckets ? i : kBuckets - 1;
  }

 private:
  /// Quarter-power-of-two edges within one octave: 2^(k/4) for k = 0..3
  /// (nearest-double literals; constexpr forbids std::pow). The bucket
  /// edge ratio 2^(1/4) is what bounds quantile_estimate at <= 19%.
  static constexpr double kOctaveEdges[kSubBuckets] = {
      1.0, 1.1892071150027210, 1.4142135623730951, 1.6817928305074290};

  /// The same edges as raw mantissa bits, for bucket_index's integer
  /// compares.
  static constexpr std::uint64_t kMantissaMask =
      (std::uint64_t{1} << 52) - 1;
  static constexpr std::uint64_t kEdgeMantissa[kSubBuckets] = {
      std::bit_cast<std::uint64_t>(kOctaveEdges[0]) & kMantissaMask,
      std::bit_cast<std::uint64_t>(kOctaveEdges[1]) & kMantissaMask,
      std::bit_cast<std::uint64_t>(kOctaveEdges[2]) & kMantissaMask,
      std::bit_cast<std::uint64_t>(kOctaveEdges[3]) & kMantissaMask};

  static void atomic_add(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  friend class HistogramBatch;

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Single-threaded batch accumulator for tight recording loops: record()
/// updates plain (non-atomic) locals, flush() merges the whole batch into
/// a shared Histogram with O(non-zero buckets) atomic operations instead
/// of five per sample. Used by serial aggregation passes (e.g. the
/// trial runner's reduction loop) where per-sample atomics would dominate
/// the loop body. flush() preserves the histogram's snapshot-consistency
/// order (count published last, release) and resets the batch for reuse.
class HistogramBatch {
 public:
  void record(double value) noexcept {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
    sum_ += value;
    ++buckets_[Histogram::bucket_index(value)];
    ++count_;
  }

  std::uint64_t count() const noexcept { return count_; }

  /// Merges into @p histogram (null-safe no-op) and resets. One atomic
  /// CAS/fetch_add per touched field rather than per sample.
  void flush(Histogram* histogram) noexcept {
    if (histogram != nullptr && count_ > 0) {
      Histogram::atomic_min(histogram->min_, min_);
      Histogram::atomic_max(histogram->max_, max_);
      Histogram::atomic_add(histogram->sum_, sum_);
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (buckets_[i] != 0) {
          histogram->buckets_[i].fetch_add(buckets_[i],
                                           std::memory_order_relaxed);
        }
      }
      histogram->count_.fetch_add(count_, std::memory_order_release);
    }
    *this = HistogramBatch();
  }

 private:
  std::uint64_t buckets_[Histogram::kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// RAII wall-clock timer recording elapsed **nanoseconds** into a
/// Histogram on destruction (metrics fed by it carry a `_ns` suffix,
/// e.g. pool.task_latency_ns). Nanoseconds, not microseconds: the
/// histogram's bucket 0 swallows everything <= 1, so recording in µs
/// collapsed every sub-microsecond span — most pool tasks — into one
/// unresolvable bucket. Null-safe: with histogram == nullptr neither the
/// clock is read nor anything recorded.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->record(
          std::chrono::duration<double, std::nano>(elapsed).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace mlck::obs

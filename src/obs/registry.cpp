#include "obs/registry.h"

#include <ostream>
#include <stdexcept>

#include "util/table.h"

namespace mlck::obs {

void MetricsRegistry::claim_name(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind) {
    throw std::invalid_argument("MetricsRegistry: \"" + name +
                                "\" already registered as a different kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  claim_name(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  claim_name(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  claim_name(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

util::Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  util::Json::Object doc;
  if (!counters_.empty()) {
    util::Json::Object section;
    for (const auto& [name, c] : counters_) {
      section[name] = util::Json(static_cast<double>(c->value()));
    }
    doc["counters"] = util::Json(std::move(section));
  }
  if (!gauges_.empty()) {
    util::Json::Object section;
    for (const auto& [name, g] : gauges_) {
      section[name] = util::Json(g->value());
    }
    doc["gauges"] = util::Json(std::move(section));
  }
  if (!histograms_.empty()) {
    util::Json::Object section;
    for (const auto& [name, h] : histograms_) {
      util::Json::Object entry;
      const std::uint64_t n = h->count();
      entry["count"] = util::Json(static_cast<double>(n));
      entry["sum"] = util::Json(h->sum());
      entry["mean"] = util::Json(h->mean());
      if (n > 0) {
        entry["min"] = util::Json(h->min());
        entry["max"] = util::Json(h->max());
        // Bucket-interpolated estimates (error bound documented in
        // docs/OBSERVABILITY.md).
        entry["p50"] = util::Json(h->quantile_estimate(0.50));
        entry["p90"] = util::Json(h->quantile_estimate(0.90));
        entry["p99"] = util::Json(h->quantile_estimate(0.99));
      }
      util::Json::Array buckets;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t in_bucket = h->bucket_count(i);
        if (in_bucket == 0) continue;
        util::Json::Object bucket;
        const double le = Histogram::bucket_upper_bound(i);
        // JSON has no infinity literal; the open-ended last bucket is
        // marked with null instead.
        bucket["le"] = std::isfinite(le) ? util::Json(le) : util::Json();
        bucket["count"] = util::Json(static_cast<double>(in_bucket));
        buckets.emplace_back(std::move(bucket));
      }
      entry["buckets"] = util::Json(std::move(buckets));
      section[name] = util::Json(std::move(entry));
    }
    doc["histograms"] = util::Json(std::move(section));
  }
  return util::Json(std::move(doc));
}

void MetricsRegistry::print(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  if (!counters_.empty()) {
    util::Table table({"counter", "value"});
    for (const auto& [name, c] : counters_) {
      table.add_row({name, std::to_string(c->value())});
    }
    table.print(out);
  }
  if (!gauges_.empty()) {
    util::Table table({"gauge", "value"});
    for (const auto& [name, g] : gauges_) {
      table.add_row({name, util::Table::num(g->value(), 3)});
    }
    table.print(out);
  }
  if (!histograms_.empty()) {
    util::Table table({"histogram", "count", "mean", "min", "max"});
    for (const auto& [name, h] : histograms_) {
      const bool any = h->count() > 0;
      table.add_row({name, std::to_string(h->count()),
                     util::Table::num(h->mean(), 3),
                     any ? util::Table::num(h->min(), 3) : "-",
                     any ? util::Table::num(h->max(), 3) : "-"});
    }
    table.print(out);
  }
}

}  // namespace mlck::obs

#include "obs/registry.h"

#include <ostream>
#include <stdexcept>

#include "util/table.h"

namespace mlck::obs {

void MetricsRegistry::claim_name(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind) {
    throw std::invalid_argument("MetricsRegistry: \"" + name +
                                "\" already registered as a different kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  claim_name(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  claim_name(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  claim_name(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

/// One histogram, read count-first: the acquire load of count pairs with
/// record()'s release increment, so the fields read afterwards cover at
/// least `count` samples (no torn count/sum pairs).
HistogramSnapshot snapshot_histogram(const Histogram& h) {
  HistogramSnapshot snap;
  snap.count = h.count();  // acquire; must be the first read
  snap.sum = h.sum();
  snap.min = h.min();
  snap.max = h.max();
  snap.p50 = h.quantile_estimate(0.50);
  snap.p90 = h.quantile_estimate(0.90);
  snap.p99 = h.quantile_estimate(0.99);
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t in_bucket = h.bucket_count(i);
    if (in_bucket == 0) continue;
    snap.buckets.emplace_back(Histogram::bucket_upper_bound(i), in_bucket);
  }
  return snap;
}

}  // namespace

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, snapshot_histogram(*h));
  }
  return snap;
}

util::Json MetricsRegistry::to_json() const {
  const RegistrySnapshot snap = snapshot();
  util::Json::Object doc;
  if (!snap.counters.empty()) {
    util::Json::Object section;
    for (const auto& [name, value] : snap.counters) {
      section[name] = util::Json(static_cast<double>(value));
    }
    doc["counters"] = util::Json(std::move(section));
  }
  if (!snap.gauges.empty()) {
    util::Json::Object section;
    for (const auto& [name, value] : snap.gauges) {
      section[name] = util::Json(value);
    }
    doc["gauges"] = util::Json(std::move(section));
  }
  if (!snap.histograms.empty()) {
    util::Json::Object section;
    for (const auto& [name, h] : snap.histograms) {
      util::Json::Object entry;
      entry["count"] = util::Json(static_cast<double>(h.count));
      entry["sum"] = util::Json(h.sum);
      entry["mean"] = util::Json(h.mean());
      if (h.count > 0) {
        entry["min"] = util::Json(h.min);
        entry["max"] = util::Json(h.max);
        // Bucket-interpolated estimates (error bound documented in
        // docs/OBSERVABILITY.md).
        entry["p50"] = util::Json(h.p50);
        entry["p90"] = util::Json(h.p90);
        entry["p99"] = util::Json(h.p99);
      }
      util::Json::Array buckets;
      for (const auto& [le, in_bucket] : h.buckets) {
        util::Json::Object bucket;
        // JSON has no infinity literal; the open-ended last bucket is
        // marked with null instead.
        bucket["le"] = std::isfinite(le) ? util::Json(le) : util::Json();
        bucket["count"] = util::Json(static_cast<double>(in_bucket));
        buckets.emplace_back(std::move(bucket));
      }
      entry["buckets"] = util::Json(std::move(buckets));
      section[name] = util::Json(std::move(entry));
    }
    doc["histograms"] = util::Json(std::move(section));
  }
  return util::Json(std::move(doc));
}

void MetricsRegistry::print(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  if (!counters_.empty()) {
    util::Table table({"counter", "value"});
    for (const auto& [name, c] : counters_) {
      table.add_row({name, std::to_string(c->value())});
    }
    table.print(out);
  }
  if (!gauges_.empty()) {
    util::Table table({"gauge", "value"});
    for (const auto& [name, g] : gauges_) {
      table.add_row({name, util::Table::num(g->value(), 3)});
    }
    table.print(out);
  }
  if (!histograms_.empty()) {
    util::Table table({"histogram", "count", "mean", "min", "max"});
    for (const auto& [name, h] : histograms_) {
      const bool any = h->count() > 0;
      table.add_row({name, std::to_string(h->count()),
                     util::Table::num(h->mean(), 3),
                     any ? util::Table::num(h->min(), 3) : "-",
                     any ? util::Table::num(h->max(), 3) : "-"});
    }
    table.print(out);
  }
}

}  // namespace mlck::obs

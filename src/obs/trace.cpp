#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/simulator.h"
#include "systems/system_config.h"

namespace mlck::obs {

// TraceSink and Span are header-only (see trace.h); this translation unit
// holds the exporters and the auditor, which need the full simulator and
// system definitions.

// ---- Exporters -----------------------------------------------------------

namespace {

constexpr int kHostPid = 1;
constexpr int kSimPid = 2;
/// One simulated minute is rendered as one second of trace time.
constexpr double kSimMinuteToUs = 1e6;

const char* kind_name(sim::TraceEvent::Kind kind) {
  switch (kind) {
    case sim::TraceEvent::Kind::kCompute:
      return "compute";
    case sim::TraceEvent::Kind::kCheckpoint:
      return "checkpoint";
    case sim::TraceEvent::Kind::kRestart:
      return "restart";
    case sim::TraceEvent::Kind::kScratchRestart:
      return "scratch restart";
  }
  return "unknown";
}

std::string sim_event_name(const sim::TraceEvent& ev) {
  std::string name = kind_name(ev.kind);
  if (ev.system_level >= 0) {
    name += " L" + std::to_string(ev.system_level);
  }
  return name;
}

util::Json sim_event_args(const sim::TraceEvent& ev) {
  util::Json::Object args;
  args["completed"] = ev.completed;
  args["failure_severity"] = ev.failure_severity;
  args["truncated_by_cap"] = ev.truncated_by_cap;
  args["work"] = ev.work;
  args["system_level"] = ev.system_level;
  return util::Json(std::move(args));
}

struct ChromeRow {
  int pid = 0;
  int tid = 0;
  double ts = 0.0;  ///< sort key; metadata rows use -1 to lead their track
  util::Json event;
};

util::Json chrome_metadata(int pid, int tid, const char* what,
                           std::string value) {
  util::Json::Object args;
  args["name"] = std::move(value);
  util::Json::Object obj;
  obj["ph"] = "M";
  obj["pid"] = pid;
  obj["tid"] = tid;
  obj["name"] = what;
  obj["args"] = util::Json(std::move(args));
  return util::Json(std::move(obj));
}

}  // namespace

util::Json chrome_trace_json(const TraceSink* host,
                             const sim::TrialTraceCapture* trials) {
  std::vector<ChromeRow> rows;

  if (host != nullptr) {
    rows.push_back(
        {kHostPid, 0, -1.0, chrome_metadata(kHostPid, 0, "process_name",
                                            "mlck host")});
    for (const auto& [tid, name] : host->thread_names()) {
      rows.push_back(
          {kHostPid, tid, -1.0,
           chrome_metadata(kHostPid, tid, "thread_name", name)});
    }
    for (const SpanEvent& span : host->events()) {
      util::Json::Object obj;
      obj["ph"] = "X";
      obj["pid"] = kHostPid;
      obj["tid"] = span.thread_id;
      obj["ts"] = span.start_us;
      obj["dur"] = span.end_us - span.start_us;
      obj["name"] = span.name;
      obj["cat"] = span.category;
      rows.push_back({kHostPid, span.thread_id, span.start_us,
                      util::Json(std::move(obj))});
    }
  }

  if (trials != nullptr && !trials->trials.empty()) {
    rows.push_back(
        {kSimPid, 0, -1.0, chrome_metadata(kSimPid, 0, "process_name",
                                           "mlck simulator")});
    for (const sim::TrialTrace& trial : trials->trials) {
      const int tid = static_cast<int>(trial.trial);
      rows.push_back(
          {kSimPid, tid, -1.0,
           chrome_metadata(kSimPid, tid, "thread_name",
                           "trial " + std::to_string(trial.trial))});
      for (const sim::TraceEvent& ev : trial.events) {
        const double ts = ev.start * kSimMinuteToUs;
        util::Json::Object obj;
        obj["ph"] = "X";
        obj["pid"] = kSimPid;
        obj["tid"] = tid;
        obj["ts"] = ts;
        obj["dur"] = (ev.end - ev.start) * kSimMinuteToUs;
        obj["name"] = sim_event_name(ev);
        obj["cat"] = "sim";
        obj["args"] = sim_event_args(ev);
        rows.push_back({kSimPid, tid, ts, util::Json(std::move(obj))});
      }
    }
  }

  // Monotonic timestamps per (pid, tid) track; metadata rows lead.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const ChromeRow& a, const ChromeRow& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts < b.ts;
                   });

  util::Json::Array events;
  events.reserve(rows.size());
  for (ChromeRow& row : rows) events.push_back(std::move(row.event));
  util::Json::Object doc;
  doc["traceEvents"] = util::Json(std::move(events));
  doc["displayTimeUnit"] = "ms";
  return util::Json(std::move(doc));
}

std::string trace_jsonl(const TraceSink* host,
                        const sim::TrialTraceCapture* trials) {
  std::string out;
  if (host != nullptr) {
    const auto names = host->thread_names();
    for (const SpanEvent& span : host->events()) {
      util::Json::Object obj;
      obj["type"] = "span";
      obj["name"] = span.name;
      obj["category"] = span.category;
      obj["thread"] = span.thread_id;
      if (const auto it = names.find(span.thread_id); it != names.end()) {
        obj["thread_name"] = it->second;
      }
      obj["start_us"] = span.start_us;
      obj["end_us"] = span.end_us;
      out += util::Json(std::move(obj)).dump();
      out += '\n';
    }
  }
  if (trials != nullptr) {
    for (const sim::TrialTrace& trial : trials->trials) {
      for (const sim::TraceEvent& ev : trial.events) {
        util::Json::Object obj;
        obj["type"] = "sim_event";
        obj["trial"] = static_cast<long long>(trial.trial);
        obj["kind"] = kind_name(ev.kind);
        obj["start"] = ev.start;
        obj["end"] = ev.end;
        obj["system_level"] = ev.system_level;
        obj["completed"] = ev.completed;
        obj["failure_severity"] = ev.failure_severity;
        obj["truncated_by_cap"] = ev.truncated_by_cap;
        obj["work"] = ev.work;
        out += util::Json(std::move(obj)).dump();
        out += '\n';
      }
    }
  }
  return out;
}

// ---- Trace auditor -------------------------------------------------------

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

TraceAuditReport audit_trial_trace(const systems::SystemConfig& system,
                                   const sim::TrialResult& result,
                                   const std::vector<sim::TraceEvent>& events) {
  using Kind = sim::TraceEvent::Kind;
  TraceAuditReport report;
  auto fail = [&report](std::string msg) {
    report.errors.push_back(std::move(msg));
  };

  if (events.empty()) {
    fail("trace is empty: a simulated trial records at least one event");
    return report;
  }

  // --- Tiling: events cover [0, total_time] with no gaps or overlaps. ---
  if (events.front().start != 0.0) {
    fail("first event starts at " + fmt(events.front().start) + ", not 0");
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::TraceEvent& ev = events[i];
    if (ev.end < ev.start) {
      fail("event " + std::to_string(i) + " runs backwards: [" +
           fmt(ev.start) + ", " + fmt(ev.end) + "]");
    }
    if (i > 0 && ev.start != events[i - 1].end) {
      fail("event " + std::to_string(i) + " starts at " + fmt(ev.start) +
           " but the previous event ended at " + fmt(events[i - 1].end));
    }
  }
  if (events.back().end != result.total_time) {
    fail("last event ends at " + fmt(events.back().end) +
         " but the trial reports total_time " + fmt(result.total_time));
  }

  // --- Replay: rebuild the breakdown from the stream alone. The replay
  // mirrors the simulator's per-event accumulation order exactly, using
  // elapsed time for failed/truncated phases, the system's per-level
  // costs for completed checkpoints/restarts, and the committed-work
  // annotations for rework, so agreement is bit-for-bit.
  sim::SimBreakdown recon;
  double prev_work = 0.0;
  long long failures = 0;
  long long checkpoints_completed = 0;
  long long restarts_completed = 0;
  long long restarts_failed = 0;
  long long scratch_restarts = 0;
  bool saw_truncation = false;

  auto add_rework = [&recon](Kind kind, double lost) {
    if (lost <= 0.0) return;  // same guard as the simulator's add_rework
    switch (kind) {
      case Kind::kCompute:
        recon.rework_compute += lost;
        break;
      case Kind::kCheckpoint:
        recon.rework_checkpoint += lost;
        break;
      case Kind::kRestart:
        recon.rework_restart += lost;
        break;
      case Kind::kScratchRestart:
        break;
    }
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::TraceEvent& ev = events[i];
    const double elapsed = ev.end - ev.start;
    const bool failed = !ev.completed && ev.failure_severity >= 0;
    if (failed) ++failures;
    if (ev.truncated_by_cap) {
      saw_truncation = true;
      if (ev.completed || ev.failure_severity >= 0) {
        fail("event " + std::to_string(i) +
             " is truncated_by_cap yet marked completed or attributed to a "
             "failure severity");
      }
      if (i + 1 != events.size()) {
        fail("event " + std::to_string(i) +
             " is truncated_by_cap but is not the last event: the simulator "
             "stops at the cap");
      }
    }

    switch (ev.kind) {
      case Kind::kCompute: {
        if (failed) {
          // The simulator charges (work before the segment + the partial
          // segment) minus the post-rollback position to rework_compute.
          add_rework(Kind::kCompute, (prev_work + elapsed) - ev.work);
        }
        // Completed and cap-truncated computation both survive as useful
        // work; the final annotation carries it to recon.useful below.
        break;
      }
      case Kind::kCheckpoint: {
        const auto level = static_cast<std::size_t>(ev.system_level);
        if (ev.system_level < 0 ||
            level >= system.checkpoint_cost.size()) {
          fail("event " + std::to_string(i) + " checkpoint has level " +
               std::to_string(ev.system_level) + " outside the system's " +
               std::to_string(system.checkpoint_cost.size()) + " levels");
          break;
        }
        if (ev.completed) {
          // The simulator credits the configured cost, not end - start
          // (bitwise these can differ after accumulated additions).
          recon.checkpoint_ok += system.checkpoint_cost[level];
          ++checkpoints_completed;
        } else {
          recon.checkpoint_failed += elapsed;
          // A failure mid-checkpoint loses work only via the rollback to
          // the restore point; nothing was attempted beyond prev_work.
          if (failed) add_rework(Kind::kCheckpoint, prev_work - ev.work);
        }
        break;
      }
      case Kind::kRestart: {
        const auto level = static_cast<std::size_t>(ev.system_level);
        if (ev.system_level < 0 || level >= system.restart_cost.size()) {
          fail("event " + std::to_string(i) + " restart has level " +
               std::to_string(ev.system_level) + " outside the system's " +
               std::to_string(system.restart_cost.size()) + " levels");
          break;
        }
        if (ev.completed) {
          recon.restart_ok += system.restart_cost[level];
          ++restarts_completed;
        } else {
          recon.restart_failed += elapsed;
          if (failed) {
            ++restarts_failed;
            // Falling back to an older (or no) checkpoint discards the
            // difference between the two restore points.
            add_rework(Kind::kRestart, prev_work - ev.work);
          }
        }
        break;
      }
      case Kind::kScratchRestart: {
        ++scratch_restarts;
        if (elapsed != 0.0) {
          fail("event " + std::to_string(i) +
               " scratch restart should be instantaneous, spans " +
               fmt(elapsed));
        }
        if (ev.work != 0.0) {
          fail("event " + std::to_string(i) +
               " scratch restart should reset committed work to 0, has " +
               fmt(ev.work));
        }
        break;
      }
    }
    prev_work = ev.work;
  }
  recon.useful = prev_work;
  report.reconstructed = recon;

  // --- Breakdown: bit-for-bit against the trial's own accounting. ---
  const auto check_bucket = [&fail](const char* name, double got,
                                    double want) {
    if (got != want) {
      fail(std::string("reconstructed ") + name + " = " + fmt(got) +
           " differs from SimBreakdown's " + fmt(want));
    }
  };
  const sim::SimBreakdown& want = result.breakdown;
  check_bucket("useful", recon.useful, want.useful);
  check_bucket("checkpoint_ok", recon.checkpoint_ok, want.checkpoint_ok);
  check_bucket("checkpoint_failed", recon.checkpoint_failed,
               want.checkpoint_failed);
  check_bucket("restart_ok", recon.restart_ok, want.restart_ok);
  check_bucket("restart_failed", recon.restart_failed, want.restart_failed);
  check_bucket("rework_compute", recon.rework_compute, want.rework_compute);
  check_bucket("rework_checkpoint", recon.rework_checkpoint,
               want.rework_checkpoint);
  check_bucket("rework_restart", recon.rework_restart, want.rework_restart);

  // --- Counters. ---
  const auto check_count = [&fail](const char* name, long long got,
                                   long long want_count) {
    if (got != want_count) {
      fail(std::string("trace contains ") + std::to_string(got) + " " + name +
           " but the trial counted " + std::to_string(want_count));
    }
  };
  check_count("failures", failures, result.failures);
  check_count("completed checkpoints", checkpoints_completed,
              result.checkpoints_completed);
  check_count("completed restarts", restarts_completed,
              result.restarts_completed);
  check_count("failed restarts", restarts_failed, result.restarts_failed);
  check_count("scratch restarts", scratch_restarts, result.scratch_restarts);
  if (saw_truncation && !result.capped) {
    fail("trace contains a cap-truncated event but the trial is not marked "
         "capped");
  }

  return report;
}

}  // namespace mlck::obs

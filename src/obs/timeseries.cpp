#include "obs/timeseries.h"

#include <utility>

namespace mlck::obs {

namespace {

/// Appends @p point to @p points, dropping the oldest once @p capacity is
/// reached.
template <typename Point>
void push_bounded(std::deque<Point>& points, Point point,
                  std::size_t capacity) {
  if (capacity == 0) return;
  while (points.size() >= capacity) points.pop_front();
  points.push_back(std::move(point));
}

}  // namespace

TelemetrySampler::TelemetrySampler(MetricsRegistry& registry, Options options)
    : registry_(registry),
      options_(options),
      ticks_metric_(registry.counter("obs.sampler.ticks")),
      overruns_metric_(registry.counter("obs.sampler.overruns")),
      epoch_(std::chrono::steady_clock::now()) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  std::lock_guard lock(control_mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  if (options_.sample_on_start) sample_now();
  thread_ = std::thread([this] { sampler_loop(); });
}

void TelemetrySampler::stop() {
  std::thread finished;
  {
    std::lock_guard lock(control_mutex_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    finished = std::move(thread_);
  }
  wake_.notify_all();
  finished.join();
  if (options_.sample_on_stop) sample_now();
}

void TelemetrySampler::sample_now() {
  const double t = elapsed_seconds();
  std::lock_guard lock(data_mutex_);
  sample_locked(t);
}

bool TelemetrySampler::running() const {
  std::lock_guard lock(control_mutex_);
  return thread_.joinable();
}

std::uint64_t TelemetrySampler::ticks() const {
  std::lock_guard lock(data_mutex_);
  return ticks_;
}

std::uint64_t TelemetrySampler::overruns() const {
  std::lock_guard lock(data_mutex_);
  return overruns_;
}

std::map<std::string, MetricSeries> TelemetrySampler::series() const {
  std::lock_guard lock(data_mutex_);
  return series_;
}

std::map<std::string, HistogramSeries> TelemetrySampler::histogram_series()
    const {
  std::lock_guard lock(data_mutex_);
  return histogram_series_;
}

util::Json TelemetrySampler::to_json() const {
  std::lock_guard lock(data_mutex_);
  util::Json::Object doc;
  doc["period_ms"] = util::Json(static_cast<double>(options_.period.count()));
  doc["capacity"] = util::Json(static_cast<double>(options_.capacity));
  doc["ticks"] = util::Json(static_cast<double>(ticks_));
  doc["overruns"] = util::Json(static_cast<double>(overruns_));
  util::Json::Object series;
  for (const auto& [name, s] : series_) {
    util::Json::Object entry;
    entry["kind"] = util::Json(
        s.kind == MetricSeries::Kind::kCounter ? "counter" : "gauge");
    util::Json::Array points;
    for (const SamplePoint& p : s.points) {
      util::Json::Object point;
      point["t"] = util::Json(p.t);
      point["value"] = util::Json(p.value);
      point["rate"] = util::Json(p.rate);
      points.emplace_back(std::move(point));
    }
    entry["points"] = util::Json(std::move(points));
    series[name] = util::Json(std::move(entry));
  }
  doc["series"] = util::Json(std::move(series));
  util::Json::Object histograms;
  for (const auto& [name, s] : histogram_series_) {
    util::Json::Object entry;
    util::Json::Array points;
    for (const HistogramPoint& p : s.points) {
      util::Json::Object point;
      point["t"] = util::Json(p.t);
      point["count"] = util::Json(static_cast<double>(p.count));
      point["rate"] = util::Json(p.rate);
      point["mean"] = util::Json(p.mean);
      if (p.count > 0) {
        point["p50"] = util::Json(p.p50);
        point["p90"] = util::Json(p.p90);
        point["p99"] = util::Json(p.p99);
      }
      points.emplace_back(std::move(point));
    }
    entry["points"] = util::Json(std::move(points));
    histograms[name] = util::Json(std::move(entry));
  }
  doc["histograms"] = util::Json(std::move(histograms));
  return util::Json(std::move(doc));
}

void TelemetrySampler::sampler_loop() {
  auto deadline = std::chrono::steady_clock::now() + options_.period;
  for (;;) {
    {
      std::unique_lock lock(control_mutex_);
      wake_.wait_until(lock, deadline, [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    sample_now();
    const auto now = std::chrono::steady_clock::now();
    deadline += options_.period;
    if (deadline < now) {
      // The tick took longer than a period (huge registry or a loaded
      // host): count the overrun and re-anchor rather than firing a
      // burst of make-up ticks.
      {
        std::lock_guard lock(data_mutex_);
        ++overruns_;
      }
      overruns_metric_.add();
      deadline = now + options_.period;
    }
  }
}

void TelemetrySampler::sample_locked(double t) {
  const RegistrySnapshot snap = registry_.snapshot();
  for (const auto& [name, value] : snap.counters) {
    MetricSeries& s = series_[name];
    s.kind = MetricSeries::Kind::kCounter;
    SamplePoint point;
    point.t = t;
    point.value = static_cast<double>(value);
    if (!s.points.empty()) {
      const SamplePoint& prev = s.points.back();
      const double dt = t - prev.t;
      if (dt > 0.0) point.rate = (point.value - prev.value) / dt;
    }
    push_bounded(s.points, point, options_.capacity);
  }
  for (const auto& [name, value] : snap.gauges) {
    MetricSeries& s = series_[name];
    s.kind = MetricSeries::Kind::kGauge;
    SamplePoint point;
    point.t = t;
    point.value = value;
    push_bounded(s.points, point, options_.capacity);
  }
  for (const auto& [name, h] : snap.histograms) {
    HistogramSeries& s = histogram_series_[name];
    HistogramPoint point;
    point.t = t;
    point.count = h.count;
    point.mean = h.mean();
    point.p50 = h.p50;
    point.p90 = h.p90;
    point.p99 = h.p99;
    if (!s.points.empty()) {
      const HistogramPoint& prev = s.points.back();
      const double dt = t - prev.t;
      if (dt > 0.0 && h.count >= prev.count) {
        point.rate = static_cast<double>(h.count - prev.count) / dt;
      }
    }
    push_bounded(s.points, point, options_.capacity);
  }
  ++ticks_;
  ticks_metric_.add();
}

double TelemetrySampler::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

}  // namespace mlck::obs

#include "obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ctime>

#include "obs/timeseries.h"

namespace mlck::obs {

namespace {

/// Shortest round-trip-safe decimal for a double (mirrors util::Json's
/// number formatting so the two expositions agree on values).
std::string format_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string format_uint(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

/// ISO-8601 UTC timestamp ("2026-08-07T12:34:56Z").
std::string utc_now_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out = "mlck_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out.push_back(valid ? c : '_');
  }
  return out;
}

std::string openmetrics_text(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string om = openmetrics_name(name);
    out += "# TYPE " + om + " counter\n";
    out += om + "_total " + format_uint(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string om = openmetrics_name(name);
    out += "# TYPE " + om + " gauge\n";
    out += om + " " + format_double(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string om = openmetrics_name(name);
    out += "# TYPE " + om + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [le, in_bucket] : h.buckets) {
      cumulative += in_bucket;
      if (!std::isfinite(le)) continue;  // folded into +Inf below
      out += om + "_bucket{le=\"" + format_double(le) + "\"} " +
             format_uint(cumulative) + "\n";
    }
    out += om + "_bucket{le=\"+Inf\"} " + format_uint(h.count) + "\n";
    out += om + "_sum " + format_double(h.sum) + "\n";
    out += om + "_count " + format_uint(h.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

util::Json sidecar_meta(const std::vector<std::string>& argv,
                        std::size_t metric_count) {
  util::Json::Object meta;
  meta["schema_version"] = util::Json(kSidecarSchemaVersion);
  meta["written_at"] = util::Json(utc_now_iso8601());
  util::Json::Array args;
  args.reserve(argv.size());
  for (const std::string& arg : argv) args.emplace_back(arg);
  meta["argv"] = util::Json(std::move(args));
  meta["metric_count"] = util::Json(static_cast<double>(metric_count));
  return util::Json(std::move(meta));
}

util::Json sidecar_json(const MetricsRegistry& registry,
                        const std::vector<std::string>& argv) {
  const RegistrySnapshot snapshot = registry.snapshot();
  util::Json doc = registry.to_json();
  doc.make_object()["meta"] = sidecar_meta(argv, snapshot.metric_count());
  return doc;
}

std::string timeline_jsonl(const TelemetrySampler& sampler,
                           const std::vector<std::string>& argv) {
  const util::Json timeline = sampler.to_json();
  const auto& doc = timeline.as_object();

  util::Json meta = sidecar_meta(
      argv,
      doc.at("series").size() + doc.at("histograms").size());
  util::Json::Object& meta_obj = meta.make_object();
  meta_obj["kind"] = util::Json("timeline_meta");
  meta_obj["period_ms"] = doc.at("period_ms");
  meta_obj["capacity"] = doc.at("capacity");
  meta_obj["ticks"] = doc.at("ticks");
  meta_obj["overruns"] = doc.at("overruns");

  std::string out = meta.dump() + "\n";
  for (const auto& [name, entry] : doc.at("series").as_object()) {
    const auto& object = entry.as_object();
    for (const util::Json& point : object.at("points").as_array()) {
      util::Json::Object line;
      line["kind"] = util::Json("point");
      line["metric"] = util::Json(name);
      line["type"] = object.at("kind");
      line["t"] = point.at("t");
      line["value"] = point.at("value");
      line["rate"] = point.at("rate");
      out += util::Json(std::move(line)).dump() + "\n";
    }
  }
  for (const auto& [name, entry] : doc.at("histograms").as_object()) {
    for (const util::Json& point : entry.as_object().at("points").as_array()) {
      util::Json::Object line;
      line["kind"] = util::Json("hist");
      line["metric"] = util::Json(name);
      for (const auto& [key, value] : point.as_object()) {
        line[key] = value;
      }
      out += util::Json(std::move(line)).dump() + "\n";
    }
  }
  return out;
}

}  // namespace mlck::obs

#pragma once

#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/json.h"

namespace mlck::obs {

class TelemetrySampler;

/// Current schema_version stamped into every sidecar/timeline `meta`
/// section. Bump when the document shape changes incompatibly;
/// docs/OBSERVABILITY.md documents each version.
inline constexpr int kSidecarSchemaVersion = 2;

/// Maps a dot-separated metric name to its OpenMetrics metric name:
/// "mlck_" prefix, dots (and any other character outside [a-zA-Z0-9_])
/// replaced with underscores. "engine.context_cache.hits" ->
/// "mlck_engine_context_cache_hits".
std::string openmetrics_name(const std::string& name);

/// Renders @p snapshot in the OpenMetrics text exposition format
/// (Prometheus-compatible):
///  * counters as `# TYPE <n> counter` with a `<n>_total` sample;
///  * gauges as `# TYPE <n> gauge`;
///  * histograms as `# TYPE <n> histogram` with *cumulative* `_bucket`
///    samples (le="...", closing with le="+Inf"), `_sum`, and `_count`
///    (the registry's buckets are per-bucket counts; this conversion
///    accumulates them);
///  * terminated by the mandatory `# EOF` line.
/// Metric order follows the snapshot (name-sorted per kind), so output
/// is deterministic.
std::string openmetrics_text(const RegistrySnapshot& snapshot);

/// The standard `meta` section stamped onto machine-readable artifacts:
///   { "schema_version": 2, "written_at": "YYYY-MM-DDTHH:MM:SSZ",
///     "argv": [ ... ], "metric_count": N }
/// written_at is UTC wall-clock (the one intentionally nondeterministic
/// field — everything else in a sidecar is reproducible).
util::Json sidecar_meta(const std::vector<std::string>& argv,
                        std::size_t metric_count);

/// Full metrics sidecar document: the registry's to_json() sections plus
/// the `meta` header above.
util::Json sidecar_json(const MetricsRegistry& registry,
                        const std::vector<std::string>& argv);

/// Timeline as JSON Lines: the first line is the `meta` object (plus
/// "kind": "timeline_meta", sampler period/capacity/ticks/overruns), then
/// one line per (series, point) in time order:
///   {"kind":"point","metric":...,"type":"counter"|"gauge","t":...,
///    "value":...,"rate":...}
///   {"kind":"hist","metric":...,"t":...,"count":...,"rate":...,
///    "mean":...,"p50":...,"p90":...,"p99":...}
/// Each line is compact JSON; streaming-friendly (grep/jq per line).
std::string timeline_jsonl(const TelemetrySampler& sampler,
                           const std::vector<std::string>& argv);

}  // namespace mlck::obs
